/**
 * @file
 * Tests of the observability subsystem: the JSON writer/reader pair,
 * the StatRegistry, suite/table artifacts (including the byte-identity
 * guarantee across --jobs counts), and the Chrome-trace timeline.
 */

#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <limits>
#include <set>

#include "report/artifact.hh"
#include "report/json_reader.hh"
#include "report/json_writer.hh"
#include "report/stat_registry.hh"
#include "report/timeline.hh"
#include "sim/simulator.hh"
#include "sim/stats_report.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Tiny app so artifact tests run in milliseconds. */
AppProfile
tinyProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-tiny";
    p.numEvents = 6;
    p.avgEventLen = 3000;
    return p;
}

} // namespace

// --------------------------------------------------------------------
// JSON writer
// --------------------------------------------------------------------

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, PassesUtf8Through)
{
    // Multi-byte UTF-8 must survive unmangled (RFC 8259 allows raw
    // UTF-8 in strings).
    const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\xa5";
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(-0.0), "0");
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(-2.5), "-2.5");
    // Round-trip: parsing the text recovers the exact double. (Not
    // std::stod — it throws out_of_range on subnormals.)
    for (const double v : {1.0 / 3.0, 1e300, 5e-324, 123456789.125}) {
        const std::string text = jsonNumber(v);
        double parsed = 0.0;
        const auto res = std::from_chars(
            text.data(), text.data() + text.size(), parsed);
        ASSERT_EQ(res.ec, std::errc()) << text;
        EXPECT_EQ(parsed, v) << text;
    }
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, WritesNestedDocument)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("esp");
    w.key("vals").beginArray().value(1.5).value(std::uint64_t{2})
        .null().endArray();
    w.key("ok").value(true);
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(),
              "{\"name\":\"esp\",\"vals\":[1.5,2,null],\"ok\":true}");
}

// --------------------------------------------------------------------
// JSON reader (used by tests and the validator round-trip)
// --------------------------------------------------------------------

TEST(JsonReader, ParsesWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.key("s").value("a\"\\\n\xc3\xa9");
    w.key("n").value(-0.125);
    w.key("arr").beginArray().value(false).null().endArray();
    w.endObject();

    std::string err;
    const auto root = parseJson(w.str(), &err);
    ASSERT_TRUE(root) << err;
    EXPECT_EQ(root->at("s").string, "a\"\\\n\xc3\xa9");
    EXPECT_DOUBLE_EQ(root->at("n").number, -0.125);
    ASSERT_EQ(root->at("arr").array.size(), 2u);
    EXPECT_EQ(root->at("arr").array[0].kind, JsonValue::Kind::Bool);
    EXPECT_EQ(root->at("arr").array[1].kind, JsonValue::Kind::Null);
}

TEST(JsonReader, DecodesUnicodeEscapes)
{
    std::string err;
    const auto root = parseJson("\"\\u00e9\\u2192\"", &err);
    ASSERT_TRUE(root) << err;
    EXPECT_EQ(root->string, "\xc3\xa9\xe2\x86\x92");
}

TEST(JsonReader, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", &err));
    EXPECT_FALSE(parseJson("[1, 2", &err));
    EXPECT_FALSE(parseJson("tru", &err));
    EXPECT_FALSE(parseJson("{} garbage", &err));
    EXPECT_FALSE(parseJson("", &err));
}

// --------------------------------------------------------------------
// StatRegistry
// --------------------------------------------------------------------

TEST(StatRegistry, SnapshotsLiveCountersAndDerived)
{
    std::uint64_t hits = 0;
    double ratio = 0.0;
    StatRegistry reg;
    reg.registerScalar("cache.hits", &hits);
    reg.registerScalar("cache.ratio", &ratio);
    reg.registerDerived("cache.double_hits", [&hits] {
        return 2.0 * static_cast<double>(hits);
    });

    hits = 21;
    ratio = 0.75;
    const StatGroup snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("cache.hits"), 21.0);
    EXPECT_DOUBLE_EQ(snap.get("cache.ratio"), 0.75);
    EXPECT_DOUBLE_EQ(snap.get("cache.double_hits"), 42.0);
}

TEST(StatRegistry, ExpandsSampleStats)
{
    SampleStat s;
    for (const double v : {1.0, 2.0, 3.0, 4.0})
        s.record(v);
    StatRegistry reg;
    reg.registerSamples("ws", &s);
    const StatGroup snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.get("ws.count"), 4.0);
    EXPECT_DOUBLE_EQ(snap.get("ws.mean"), 2.5);
    EXPECT_DOUBLE_EQ(snap.get("ws.max"), 4.0);
    EXPECT_DOUBLE_EQ(snap.get("ws.p95"), s.percentile(95));
}

TEST(StatRegistry, DuplicateNamePanics)
{
    std::uint64_t a = 0;
    StatRegistry reg;
    reg.registerScalar("dup", &a);
    EXPECT_DEATH(reg.registerScalar("dup", &a), "duplicate stat");
}

TEST(StatRegistry, SimulatorStatsMatchHeadlineFields)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    const SimResult r = Simulator(SimConfig::espFull(true))
                            .run(*workload);
    // The headline fields are views over the registry snapshot.
    EXPECT_EQ(static_cast<double>(r.cycles), r.stats.get("core.cycles"));
    EXPECT_DOUBLE_EQ(r.ipc, r.stats.get("derived.ipc"));
    EXPECT_DOUBLE_EQ(r.l1iMpki, r.stats.get("derived.l1i_mpki"));
    EXPECT_DOUBLE_EQ(r.mispredictRate,
                     r.stats.get("derived.mispredict_rate"));
    EXPECT_DOUBLE_EQ(r.energy.total(), r.stats.get("energy.total"));
}

// --------------------------------------------------------------------
// Suite artifacts
// --------------------------------------------------------------------

namespace
{

std::vector<SuiteRow>
tinySweep(unsigned jobs, const std::vector<SimConfig> &configs)
{
    SuiteRunner runner({tinyProfile()});
    runner.setJobs(jobs);
    return runner.run(configs);
}

} // namespace

TEST(Artifact, JsonRoundTripsWithExpectedShape)
{
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::espFull(true)};
    const auto rows = tinySweep(1, configs);

    ArtifactManifest manifest;
    manifest.source = "test_report";
    manifest.toolVersion = "test";
    manifest.buildType = "test";
    const std::string text =
        renderSuiteArtifactJson(manifest, configs, rows);

    std::string err;
    const auto root = parseJson(text, &err);
    ASSERT_TRUE(root) << err;
    EXPECT_EQ(root->at("schema").string, "espsim-suite-artifact");
    EXPECT_DOUBLE_EQ(root->at("format_version").number,
                     artifactFormatVersion);

    const JsonValue &m = root->at("manifest");
    EXPECT_EQ(m.at("source").string, "test_report");
    EXPECT_EQ(m.at("tool_version").string, "test");
    EXPECT_EQ(m.at("config_hash").string, configsHash(configs));
    EXPECT_DOUBLE_EQ(m.at("points").number, 2.0);

    const JsonValue &results = root->at("results");
    ASSERT_EQ(results.array.size(), 2u);
    for (const JsonValue &entry : results.array) {
        EXPECT_EQ(entry.at("app").string, "amazon-tiny");
        const JsonValue &stats = entry.at("stats");
        EXPECT_TRUE(stats.find("core.cycles"));
        EXPECT_TRUE(stats.find("derived.ipc"));
        EXPECT_TRUE(stats.find("mem.l1i.misses"));
    }
    // The artifact's stats agree with the in-memory results.
    EXPECT_DOUBLE_EQ(
        results.array[0].at("stats").at("core.cycles").number,
        static_cast<double>(rows[0].results[0].cycles));
}

TEST(Artifact, ByteIdenticalAcrossJobsCounts)
{
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::nextLine(),
                                         SimConfig::espFull(true)};
    ArtifactManifest manifest;
    manifest.source = "test_report";
    manifest.toolVersion = "test";
    manifest.buildType = "test";

    const auto serial = tinySweep(1, configs);
    const auto parallel = tinySweep(4, configs);
    EXPECT_EQ(renderSuiteArtifactJson(manifest, configs, serial),
              renderSuiteArtifactJson(manifest, configs, parallel));
    EXPECT_EQ(renderSuiteArtifactCsv(manifest, configs, serial),
              renderSuiteArtifactCsv(manifest, configs, parallel));
}

TEST(Artifact, ConfigsHashTracksParameters)
{
    const std::vector<SimConfig> a{SimConfig::baseline()};
    std::vector<SimConfig> b{SimConfig::baseline()};
    EXPECT_EQ(configsHash(a), configsHash(b));
    EXPECT_EQ(configsHash(a).size(), 16u);

    b[0].core.robSize += 1;
    EXPECT_NE(configsHash(a), configsHash(b));

    std::vector<SimConfig> c{SimConfig::baseline()};
    c[0].esp.maxDepth = 1;
    EXPECT_NE(configsHash(a), configsHash(c));
}

TEST(Artifact, CsvHasOneRowPerStat)
{
    const std::vector<SimConfig> configs{SimConfig::baseline()};
    const auto rows = tinySweep(1, configs);
    ArtifactManifest manifest;
    manifest.source = "test_report";
    const std::string csv =
        renderSuiteArtifactCsv(manifest, configs, rows);

    std::size_t data_lines = 0;
    std::size_t comment_lines = 0;
    for (std::size_t pos = 0; pos < csv.size();) {
        const std::size_t eol = csv.find('\n', pos);
        if (csv[pos] == '#')
            ++comment_lines;
        else
            ++data_lines;
        pos = (eol == std::string::npos) ? csv.size() : eol + 1;
    }
    // header line + one line per stat in the single result
    EXPECT_EQ(data_lines, 1 + rows[0].results[0].stats.values().size());
    EXPECT_GE(comment_lines, 4u);
}

TEST(Artifact, TableArtifactRoundTrips)
{
    TextTable table("Figure T: test table");
    table.header({"app", "va,lue"});
    table.row({"amazon", "1.5"});
    table.row({"bing", "2.5"});

    ArtifactManifest manifest;
    manifest.source = "test_report";
    manifest.toolVersion = "test";
    manifest.buildType = "test";

    std::string err;
    const auto root =
        parseJson(renderTableArtifactJson(manifest, table), &err);
    ASSERT_TRUE(root) << err;
    EXPECT_EQ(root->at("schema").string, "espsim-table-artifact");
    EXPECT_EQ(root->at("title").string, "Figure T: test table");
    ASSERT_EQ(root->at("rows").array.size(), 2u);
    EXPECT_EQ(root->at("rows").array[1].array[0].string, "bing");

    // The CSV quotes the comma-bearing header cell.
    const std::string csv = renderTableArtifactCsv(manifest, table);
    EXPECT_NE(csv.find("\"va,lue\""), std::string::npos);
    EXPECT_NE(csv.find("amazon,1.5"), std::string::npos);
}

// --------------------------------------------------------------------
// Event timeline
// --------------------------------------------------------------------

TEST(Timeline, RecordsEventsAndExportsValidChromeTrace)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    EventTimeline timeline;
    const SimResult r = Simulator(SimConfig::espFull(true))
                            .run(*workload, &timeline);

    // One span per simulated event; ESP ran, so windows exist.
    EXPECT_EQ(timeline.numEvents(), workload->numEvents());
    EXPECT_GT(timeline.numStalls(), 0u);
    EXPECT_GT(timeline.numEspWindows(), 0u);
    EXPECT_GT(r.cycles, 0u);

    std::string err;
    const auto root = parseJson(timeline.renderChromeTrace(), &err);
    ASSERT_TRUE(root) << err;

    const JsonValue &other = root->at("otherData");
    EXPECT_EQ(other.at("config").string, "ESP+NL");
    EXPECT_EQ(other.at("workload").string, "amazon-tiny");
    EXPECT_DOUBLE_EQ(other.at("timeline_format_version").number,
                     timelineFormatVersion);

    const JsonValue &events = root->at("traceEvents");
    ASSERT_GT(events.array.size(), 0u);

    std::size_t event_slices = 0;
    std::size_t esp_slices = 0;
    std::size_t meta_records = 0;
    std::size_t counter_records = 0;
    double last_event_ts = -1.0;
    for (const JsonValue &e : events.array) {
        const std::string &ph = e.at("ph").string;
        if (ph == "M") {
            ++meta_records;
            continue;
        }
        if (ph == "C") {
            // Cycle-accounting counter track: one sample per event,
            // with at least one named bucket.
            ++counter_records;
            EXPECT_EQ(e.at("name").string, "cycle buckets");
            EXPECT_GT(e.at("args").object.size(), 0u);
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_GE(e.at("ts").number, 0.0);
        EXPECT_GE(e.at("dur").number, 0.0);
        EXPECT_DOUBLE_EQ(e.at("pid").number, 1.0);
        const std::string &name = e.at("name").string;
        if (name.rfind("event ", 0) == 0) {
            ++event_slices;
            // Event slices appear in simulation order.
            EXPECT_GE(e.at("ts").number, last_event_ts);
            last_event_ts = e.at("ts").number;
        }
        if (name.rfind("ESP-", 0) == 0)
            ++esp_slices;
    }
    EXPECT_GE(meta_records, 5u); // process + four thread names
    EXPECT_EQ(event_slices, workload->numEvents());
    EXPECT_EQ(esp_slices, timeline.numEspWindows());
    EXPECT_EQ(counter_records, workload->numEvents());
}

TEST(Timeline, BaselineRunHasNoEspWindows)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    EventTimeline timeline;
    Simulator(SimConfig::baseline()).run(*workload, &timeline);
    EXPECT_EQ(timeline.numEvents(), workload->numEvents());
    EXPECT_EQ(timeline.numEspWindows(), 0u);
}

TEST(Timeline, TimelineDoesNotPerturbResults)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    EventTimeline timeline;
    const SimResult with =
        Simulator(SimConfig::espFull(true)).run(*workload, &timeline);
    const SimResult without =
        Simulator(SimConfig::espFull(true)).run(*workload);
    EXPECT_EQ(with.cycles, without.cycles);
    EXPECT_DOUBLE_EQ(with.ipc, without.ipc);
}

TEST(Timeline, StallNamesAreStable)
{
    EXPECT_STREQ(timelineStallName(TimelineStall::InstrMiss),
                 "icache-miss");
    EXPECT_STREQ(timelineStallName(TimelineStall::DataMiss),
                 "dcache-miss");
    EXPECT_STREQ(timelineStallName(TimelineStall::LsqFull), "lsq-full");
    EXPECT_STREQ(timelineStallName(TimelineStall::Mispredict),
                 "mispredict-flush");
    EXPECT_STREQ(timelineStallName(TimelineStall::BtbMiss),
                 "btb-miss");
}
