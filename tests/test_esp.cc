/**
 * @file
 * Tests for the ESP controller and hardware event queue: jump-ahead on
 * stalls, re-entrant pre-execution, cachelet isolation from L1/L2,
 * list recording and promotion, normal-mode list-driven prefetching
 * and branch pre-training, divergence behaviour, the naive strawman,
 * and the working-set instrumentation.
 */

#include <gtest/gtest.h>

#include "esp/controller.hh"
#include "esp/event_queue.hh"
#include "workload/builder.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Three-event workload with far-apart code/data per event. */
std::unique_ptr<InMemoryWorkload>
threeEvents()
{
    WorkloadBuilder b;
    for (int e = 0; e < 3; ++e) {
        const Addr code = 0x100000 * (e + 1);
        const Addr data = 0x8000000 + 0x100000 * e;
        b.beginEvent(code, 0x9000000 + 4096 * e);
        for (int i = 0; i < 40; ++i) {
            b.aluBlock(code + 256 * i, 4);
            b.load(code + 256 * i + 16, data + 512 * i,
                   static_cast<std::uint8_t>(i % 8));
            b.branch(code + 256 * i + 20, true, code + 256 * (i + 1));
        }
    }
    return b.build("three");
}

StallContext
dataStall(std::size_t trigger = 0, Cycle idle = 2000)
{
    StallContext ctx;
    ctx.kind = StallKind::DataLlcMiss;
    ctx.idleCycles = idle;
    ctx.triggerOpIdx = trigger;
    return ctx;
}

struct Rig
{
    std::unique_ptr<InMemoryWorkload> w;
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;

    explicit Rig(std::unique_ptr<InMemoryWorkload> workload)
        : w(std::move(workload))
    {
    }

    EspController
    controller()
    {
        return EspController(cfg, mem, bp, *w, 4);
    }
};

} // namespace

TEST(EventQueue, RefillShowsNextTwoEvents)
{
    auto w = threeEvents();
    HardwareEventQueue q;
    q.refill(*w, 0);
    EXPECT_TRUE(q.entry(0).valid);
    EXPECT_EQ(q.entry(0).eventIdx, 1u);
    EXPECT_EQ(q.entry(0).handlerPc, w->event(1).handlerPc);
    EXPECT_EQ(q.entry(0).argObjectAddr, w->event(1).argObjectAddr);
    EXPECT_TRUE(q.entry(1).valid);
    EXPECT_EQ(q.entry(1).eventIdx, 2u);
}

TEST(EventQueue, RefillAtTailInvalidates)
{
    auto w = threeEvents();
    HardwareEventQueue q;
    q.refill(*w, 2); // last event running: nothing waits
    EXPECT_FALSE(q.entry(0).valid);
    EXPECT_FALSE(q.entry(1).valid);
}

TEST(EventQueue, EuBitSurvivesRefillOfSameEvent)
{
    auto w = threeEvents();
    HardwareEventQueue q;
    q.refill(*w, 0);
    q.entry(0).executionUnderway = true;
    q.refill(*w, 0);
    EXPECT_TRUE(q.entry(0).executionUnderway);
}

TEST(EventQueue, PopSlidesEntries)
{
    auto w = threeEvents();
    HardwareEventQueue q;
    q.refill(*w, 0);
    q.pop();
    EXPECT_EQ(q.entry(0).eventIdx, 2u);
    EXPECT_FALSE(q.entry(1).valid);
}

TEST(Esp, StallTriggersPreExecutionOfNextEvent)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall());
    EXPECT_EQ(esp.stats().jumps, 1u);
    EXPECT_GT(esp.stats().preExecutedInstrs, 0u);
    // A long window can spill into the second queued event (ESP-2).
    EXPECT_GE(esp.stats().eventsPreExecuted, 1u);
    EXPECT_LE(esp.stats().eventsPreExecuted, 2u);
    EXPECT_TRUE(esp.eventQueue().entry(0).executionUnderway);
}

TEST(Esp, PreExecutionIsReentrant)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall(0, 60)); // small budget: partial pre-exec
    const auto first = esp.stats().preExecutedInstrs;
    ASSERT_GT(first, 0u);
    ASSERT_LT(first, rig.w->event(1).size());
    esp.onStall(dataStall(10, 60));
    // Second visit continued, not restarted: strictly more coverage.
    EXPECT_GT(esp.stats().preExecutedInstrs, first);
    // Total instructions across both visits never exceeds the event +
    // possibly the deeper context.
    EXPECT_LE(esp.stats().preExecutedInstrs,
              rig.w->event(1).size() + rig.w->event(2).size());
}

TEST(Esp, NonReentrantAblationRestarts)
{
    Rig rig(threeEvents());
    rig.cfg.reentrant = false;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall(0, 60));
    const auto first = esp.stats().preExecutedInstrs;
    esp.onStall(dataStall(10, 60));
    // Restarting re-executes the same head: roughly double the count
    // without advancing coverage much; at minimum it re-pre-executes.
    EXPECT_GE(esp.stats().preExecutedInstrs, 2 * first - 5);
}

TEST(Esp, CacheletsIsolateSpeculativeTraffic)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall());
    // Pre-execution must not have touched L1/L2 demand state: the
    // next event's blocks are still cold in the hierarchy.
    const Addr next_code = rig.w->event(1).handlerPc;
    EXPECT_EQ(rig.mem.probeInstr(next_code).level, HitLevel::Memory);
    EXPECT_EQ(rig.mem.l1iAccesses(), 0u);
    EXPECT_EQ(rig.mem.l1dAccesses(), 0u);
}

TEST(Esp, NaiveModeFillsHierarchyDirectly)
{
    Rig rig(threeEvents());
    rig.cfg.naiveMode = true;
    rig.cfg.branchPolicy = BranchPolicy::NoExtraHardware;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall());
    const Addr next_code = rig.w->event(1).handlerPc;
    // Blocks went straight into L1/L2 (the Figure 10 strawman)...
    EXPECT_NE(rig.mem.probeInstr(next_code).level, HitLevel::Memory);
    // ...but the *demand* stat counters stayed clean.
    EXPECT_EQ(rig.mem.l1iAccesses(), 0u);
}

TEST(Esp, ListsRecordPreExecutedFootprint)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    // Several windows, as a real event would produce: pre-execution
    // resumes each time (re-entrant) and fills the lists.
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(5 * k));
    // Promote: event 0 ends, event 1 becomes current.
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    // The recorded I-list now drives prefetches for event 1's head.
    const Addr head_block = blockAlign(rig.w->event(1).ops[0].pc);
    EXPECT_NE(rig.mem.probeInstr(head_block).level, HitLevel::Memory);
    EXPECT_GT(esp.stats().listPrefetchesInstr, 0u);
}

TEST(Esp, DataListDrivesDataPrefetches)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(5 * k));
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    MicroOp dummy;
    dummy.setType(OpType::IntAlu);
    for (std::size_t i = 0; i < 60; ++i)
        esp.beforeOp(i, rig.w->event(1).ops[i], 5200 + i);
    EXPECT_GT(esp.stats().listPrefetchesData, 0u);
    // An early recorded data block must be resident (ops[4] is the
    // first load of the event).
    const Addr first_data = blockAlign(rig.w->event(1).ops[4].memAddr);
    EXPECT_NE(rig.mem.probeData(first_data).level, HitLevel::Memory);
}

TEST(Esp, AblationFlagsGateEachList)
{
    Rig rig(threeEvents());
    rig.cfg.useIList = false;
    rig.cfg.useDList = false;
    rig.cfg.useBList = false;
    rig.cfg.branchPolicy = BranchPolicy::SeparatePir;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(5 * k));
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    EXPECT_EQ(esp.stats().listPrefetchesInstr, 0u);
    EXPECT_EQ(esp.stats().listPrefetchesData, 0u);
    EXPECT_EQ(esp.stats().branchesPreTrained, 0u);
}

TEST(Esp, BListPreTrainsPredictor)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(5 * k));
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    EXPECT_GT(esp.stats().branchesPreTrained, 0u);
    // The pre-trained head branches of event 1 now predict correctly
    // even though the predictor never executed them architecturally.
    const EventTrace &ev = rig.w->event(1);
    int miss = 0, seen = 0;
    for (std::size_t i = 0; i < ev.size() && seen < 10; ++i) {
        if (ev.ops[i].type() != OpType::BranchCond)
            continue;
        ++seen;
        miss += rig.bp.executeBranch(ev.ops[i]) ==
            BranchResult::Mispredict;
    }
    EXPECT_LT(miss, 3);
}

TEST(Esp, JumpsToSecondEventWhenFirstExhausted)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    // Enough re-entrant windows to finish both queued events: every
    // LLC miss during ESP-1 jumps to ESP-2, so ESP-1 advances only a
    // handful of ops per window.
    for (int k = 0; k < 120; ++k)
        esp.onStall(dataStall(5 * k, 1'000'000));
    EXPECT_GE(esp.stats().deepJumps, 1u);
    EXPECT_EQ(esp.stats().eventsPreExecuted, 2u);
    EXPECT_GT(esp.stats().preExecutedInstrsDeep, 0u);
    EXPECT_EQ(esp.stats().eventsPreExecutedToEnd, 2u);
}

TEST(Esp, MaxDepthOneNeverJumpsDeep)
{
    Rig rig(threeEvents());
    rig.cfg.maxDepth = 1;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(3 * k, 1'000'000));
    EXPECT_EQ(esp.stats().deepJumps, 0u);
    EXPECT_EQ(esp.stats().eventsPreExecuted, 1u);
}

TEST(Esp, NoJumpWhenQueueEmpty)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onEventEnd(0, 100);
    esp.onEventStart(1, 101);
    esp.onEventEnd(1, 200);
    esp.onEventStart(2, 201); // last event: nothing to pre-execute
    const auto jumps_before = esp.stats().jumps;
    esp.onStall(dataStall());
    EXPECT_EQ(esp.stats().jumps, jumps_before);
}

TEST(Esp, DivergentEventRecordsWrongTail)
{
    // Build two events where the second depends on the first; its
    // speculative view diverges to a different code region.
    WorkloadBuilder b;
    b.beginEvent(0x100000);
    for (int i = 0; i < 30; ++i)
        b.aluBlock(0x100000 + 128 * i, 6);
    b.beginEvent(0x200000);
    for (int i = 0; i < 30; ++i)
        b.aluBlock(0x200000 + 128 * i, 6);
    OpSequence tail;
    for (int i = 0; i < 60; ++i) {
        MicroOp op;
        op.pc = 0x700000 + 4 * i; // wrong path
        op.setType(OpType::IntAlu);
        tail.push_back(op);
    }
    b.dependsOnPrevious(30, tail);
    Rig rig(b.build("dep"));
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(3 * k, 1'000'000));
    EXPECT_EQ(esp.stats().divergedEventsPreExecuted, 1u);
    EXPECT_LT(esp.stats().specMatchSum, 1.0);
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    // The wrong-path block was prefetched (pollution), the real tail
    // beyond the divergence was not.
    EXPECT_NE(rig.mem.probeInstr(0x700000).level, HitLevel::Memory);
}

TEST(Esp, PromotionShiftsContextsAndRotatesCachelets)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 12; ++k)
        esp.onStall(dataStall(5 * k, 1'000'000));
    esp.onEventEnd(0, 5000);
    esp.onEventStart(1, 5100);
    // Event 2 (previously ESP-2) is now ESP-1; a further stall during
    // event 1 resumes it rather than restarting.
    const auto pre = esp.stats().preExecutedInstrs;
    esp.onStall(dataStall(0, 500));
    // Event 2 was fully pre-executed already; nothing to redo.
    EXPECT_EQ(esp.stats().preExecutedInstrs, pre);
    EXPECT_EQ(esp.stats().eventsPreExecuted, 2u);
}

TEST(Esp, WorkingSetTrackingPopulatesSamples)
{
    Rig rig(threeEvents());
    rig.cfg.trackWorkingSets = true;
    rig.cfg.ideal = true;
    rig.cfg.maxDepth = 2;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 8; ++k)
        esp.onStall(dataStall(3 * k, 1'000'000));
    esp.onEventEnd(0, 5000);
    ASSERT_EQ(esp.instrWorkingSets().size(), 2u);
    EXPECT_GT(esp.instrWorkingSets()[0].count(), 0u);
    EXPECT_GT(esp.instrWorkingSets()[0].max(), 0.0);
}

TEST(Esp, DepthCapBoundsPreExecution)
{
    Rig rig(threeEvents());
    rig.cfg.maxPreExecPerEvent = 20;
    rig.cfg.maxDepth = 1;
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    for (int k = 0; k < 4; ++k)
        esp.onStall(dataStall(3 * k, 1'000'000));
    EXPECT_LE(esp.stats().preExecutedInstrs, 21u);
}

TEST(Esp, ReportExportsCounters)
{
    Rig rig(threeEvents());
    auto esp = rig.controller();
    esp.onEventStart(0, 0);
    esp.onStall(dataStall());
    StatGroup g;
    esp.report(g, "esp.");
    EXPECT_GT(g.get("esp.jumps"), 0.0);
    EXPECT_GT(g.get("esp.pre_executed_instrs"), 0.0);
    EXPECT_GT(g.get("esp.spec_match_fraction"), 0.9);
}

TEST(Esp, HardwareBudgetMatchesPaperTotals)
{
    const EspConfig cfg;
    // Paper Figure 8: ESP-1 = 12.6 KB, ESP-2 = 1.2 KB.
    EXPECT_NEAR(cfg.hardwareBytes(0) / 1024.0, 12.6, 0.4);
    EXPECT_NEAR(cfg.hardwareBytes(1) / 1024.0, 1.2, 0.2);
}
