/**
 * @file
 * Unit tests for the common utilities: deterministic RNG, stats
 * registry, sample statistics/percentiles, and the table printer.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace espsim;

TEST(Types, BlockMath)
{
    EXPECT_EQ(blockBytes, 64u);
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockNumber(128), 2u);
}

TEST(Types, OpClassification)
{
    EXPECT_TRUE(isBranch(OpType::BranchCond));
    EXPECT_TRUE(isBranch(OpType::Call));
    EXPECT_TRUE(isBranch(OpType::Return));
    EXPECT_TRUE(isBranch(OpType::BranchIndirect));
    EXPECT_TRUE(isBranch(OpType::BranchDirect));
    EXPECT_FALSE(isBranch(OpType::Load));
    EXPECT_TRUE(isMemory(OpType::Load));
    EXPECT_TRUE(isMemory(OpType::Store));
    EXPECT_FALSE(isMemory(OpType::IntAlu));
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.real();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(6.0, 2));
    EXPECT_NEAR(sum / n, 6.0, 0.5);
}

TEST(Rng, SkewedFavorsLowIndices)
{
    Rng rng(17);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += rng.skewed(100) < 25;
    // u^2 mapping: P(idx < 25) = sqrt(0.25) = 0.5.
    EXPECT_NEAR(low / static_cast<double>(n), 0.5, 0.03);
}

TEST(Stats, AddAndGet)
{
    StatGroup g;
    EXPECT_EQ(g.get("missing"), 0.0);
    EXPECT_FALSE(g.has("missing"));
    g.add("x");
    g.add("x", 2.5);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.5);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_TRUE(g.has("x"));
}

TEST(Stats, MergeSums)
{
    StatGroup a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
}

TEST(Stats, DumpContainsEntries)
{
    StatGroup g;
    g.set("alpha", 1);
    g.set("beta", 2);
    const std::string out = g.dump("p.");
    EXPECT_NE(out.find("p.alpha = 1"), std::string::npos);
    EXPECT_NE(out.find("p.beta = 2"), std::string::npos);
}

TEST(SampleStat, EmptyIsZero)
{
    SampleStat s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.percentile(95), 0.0);
}

TEST(SampleStat, PercentilesOnKnownData)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.record(i);
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(95), 95.0, 1.0);
    EXPECT_NEAR(s.percentile(0), 1.0, 0.5);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleStat, RecordAfterQueryStillSorted)
{
    SampleStat s;
    s.record(5);
    s.record(1);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    s.record(10);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Means, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1, 1, 1}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_EQ(harmonicMean({}), 0.0);
}

TEST(Means, HarmonicLeqArithmetic)
{
    const std::vector<double> v{1.2, 3.4, 0.7, 9.1};
    EXPECT_LE(harmonicMean(v), arithmeticMean(v));
}

TEST(Means, HarmonicMeanSkipsNonPositiveValues)
{
    // A degraded sweep can feed zero/negative cells into an aggregate;
    // these must be excluded with a warn, never panic.
    EXPECT_DOUBLE_EQ(harmonicMean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({-3.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({0.0, -1.0, 0.0}), 0.0);

    // Excluded values do not count toward the mean's denominator.
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 0.0}), 2.0);
    EXPECT_DOUBLE_EQ(harmonicMean({4.0, -1.0, 4.0}), 4.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 0.0}), 4.0 / 3.0, 1e-12);
}

TEST(Table, RendersAlignedRows)
{
    TextTable t("demo");
    t.header({"name", "v"});
    t.row({"a", "1.00"});
    t.row({"bb", "20.00"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("20.00"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TableDeathTest, MismatchedRowPanics)
{
    TextTable t("bad");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row has");
}
