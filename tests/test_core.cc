/**
 * @file
 * Tests for the OoO core timing model, driven by hand-built traces:
 * width-limited throughput, dependency/load-use issue costs, I-cache
 * miss bubbles, mispredict redirects, MLP overlap through the ROB,
 * looper overhead, and stall-window delivery to the hooks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/ooo_core.hh"
#include "workload/builder.hh"

using namespace espsim;

namespace
{

struct Fixture
{
    HierarchyConfig memCfg;
    CoreConfig coreCfg;
    PrefetcherConfig noPf;

    Fixture()
    {
        coreCfg.looperOverheadInstr = 0; // keep arithmetic exact
    }
};

/** Hook that records every stall window. */
class RecordingHooks : public CoreHooks
{
  public:
    std::vector<StallContext> stalls;
    std::vector<std::size_t> eventStarts;

    Cycle
    onStall(const StallContext &ctx) override
    {
        stalls.push_back(ctx);
        return 0;
    }

    void
    onEventStart(std::size_t idx, Cycle) override
    {
        eventStarts.push_back(idx);
    }
};

/** Independent ALU ops (distinct registers, no chains), looping
 *  within a single I-cache block so fetch never misses after the
 *  first access. */
std::unique_ptr<InMemoryWorkload>
independentAlus(std::size_t n)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    for (std::size_t i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x1000 + 4 * (i % 16);
        op.setType(OpType::IntAlu);
        op.dest = static_cast<std::uint8_t>(i % 8);
        op.srcA = static_cast<std::uint8_t>(8 + (i % 8));
        op.srcB = static_cast<std::uint8_t>(16 + (i % 8));
        b.op(op);
    }
    return b.build("alus");
}

} // namespace

TEST(Core, WidthBoundOnIndependentCode)
{
    Fixture f;
    auto w = independentAlus(4000);
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    CoreHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    // Warm single-block code, no dependences: IPC approaches width.
    EXPECT_GT(core.stats().ipc(), 2.5);
    EXPECT_EQ(core.stats().instructions, 4000u);
    EXPECT_EQ(core.stats().events, 1u);
}

TEST(Core, DependencyChainsReduceIpc)
{
    Fixture f;
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    for (std::size_t i = 0; i < 4000; ++i) {
        MicroOp op;
        op.pc = 0x1000 + 4 * (i % 16);
        op.setType(OpType::IntAlu);
        op.dest = 1;
        op.srcA = 1; // consumes the previous result every time
        b.op(op);
    }
    auto w = b.build("chain");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    CoreHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    auto w2 = independentAlus(4000);
    MemoryHierarchy mem2(f.memCfg);
    PentiumMPredictor bp2;
    OoOCore core2(f.coreCfg, mem2, bp2, f.noPf, hooks);
    core2.run(*w2);
    EXPECT_LT(core.stats().ipc(), core2.stats().ipc() * 0.7);
}

TEST(Core, MispredictsCostCycles)
{
    Fixture f;
    // Pseudo-random outcomes at one PC defeat every predictor
    // structure (including the loop predictor).
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    std::uint64_t lfsr = 0xace1;
    for (std::size_t i = 0; i < 2000; ++i) {
        b.aluBlock(0x1000 + 4 * (i % 8), 1);
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xb400u);
        MicroOp br;
        br.pc = 0x2000;
        br.setType(OpType::BranchCond);
        br.setTaken((lfsr & 1) != 0);
        br.setBranchTarget(br.taken() ? 0x1000 + 4 * ((i + 1) % 8) : 0);
        b.op(br);
    }
    auto w = b.build("flaky");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    CoreHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    EXPECT_GT(core.stats().mispredicts, 200u);
    EXPECT_GT(core.stats().branchStallCycles, 0u);
    EXPECT_LT(core.stats().ipc(), 1.5);
}

TEST(Core, PerfectBranchSkipsPenalties)
{
    Fixture f;
    f.coreCfg.perfectBranch = true;
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    for (std::size_t i = 0; i < 500; ++i)
        b.branch(0x1000, i % 2 == 0, 0x1004);
    auto w = b.build("br");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    CoreHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    EXPECT_EQ(core.stats().mispredicts, 0u);
    EXPECT_EQ(core.stats().branchStallCycles, 0u);
    EXPECT_EQ(core.stats().branches, 500u);
}

TEST(Core, IcacheMissesStallFetch)
{
    Fixture f;
    // Touch 200 distinct, far-apart I-blocks once each: every block is
    // a cold memory miss.
    WorkloadBuilder b;
    b.beginEvent(0x100000);
    for (std::size_t i = 0; i < 200; ++i)
        b.alu(0x100000 + i * 64 * 1024);
    auto w = b.build("coldcode");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    RecordingHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    EXPECT_EQ(core.stats().llcMissesInstr, 200u);
    EXPECT_GT(core.stats().icacheStallCycles, 200u * 80u);
    // Each cold fetch is a reportable stall window.
    EXPECT_EQ(hooks.stalls.size(), 200u);
    EXPECT_EQ(hooks.stalls[0].kind, StallKind::InstrLlcMiss);
}

TEST(Core, DataLlcMissDeliversStallWindowWithDest)
{
    Fixture f;
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.aluBlock(0x1000, 8);
    b.load(0x1020, 0x9000000, /*dest=*/5);
    b.aluBlock(0x1024, 8);
    auto w = b.build("onemiss");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    RecordingHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    ASSERT_GE(hooks.stalls.size(), 1u);
    bool found = false;
    for (const auto &sctx : hooks.stalls) {
        if (sctx.kind == StallKind::DataLlcMiss && sctx.missDest == 5)
            found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(core.stats().llcMissesData, 1u);
}

TEST(Core, MlpOverlapsIndependentMisses)
{
    Fixture f;
    // Eight independent cold loads back to back: their memory
    // latencies overlap in the ROB, so the run is far cheaper than
    // eight serialised misses.
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    for (std::size_t i = 0; i < 8; ++i)
        b.load(0x1000 + 4 * i, 0x8000000 + i * 4096,
               static_cast<std::uint8_t>(i));
    for (std::size_t i = 0; i < 64; ++i)
        b.alu(0x1100 + 4 * i);
    auto w = b.build("mlp");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    CoreHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    // One miss ~124 cycles; 8 serialised plus the cold code blocks
    // would be well over 1000.
    EXPECT_LT(core.stats().cycles, 800u);
}

TEST(Core, LooperOverheadAddsInstructionsBetweenEvents)
{
    Fixture f;
    f.coreCfg.looperOverheadInstr = 70;
    WorkloadBuilder b;
    b.beginEvent(0x1000).aluBlock(0x1000, 10);
    b.beginEvent(0x2000).aluBlock(0x2000, 10);
    auto w = b.build("two");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    RecordingHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    EXPECT_EQ(core.stats().instructions, 20u + 2u * 70u);
    EXPECT_EQ(hooks.eventStarts.size(), 2u);
}

TEST(Core, EventBoundariesInvokeHooksInOrder)
{
    Fixture f;
    WorkloadBuilder b;
    for (int e = 0; e < 5; ++e)
        b.beginEvent(0x1000 * (e + 1)).aluBlock(0x1000 * (e + 1), 4);
    auto w = b.build("five");
    MemoryHierarchy mem(f.memCfg);
    PentiumMPredictor bp;
    RecordingHooks hooks;
    OoOCore core(f.coreCfg, mem, bp, f.noPf, hooks);
    core.run(*w);
    ASSERT_EQ(hooks.eventStarts.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(hooks.eventStarts[i], i);
}

TEST(Core, CyclesMonotonicWithWork)
{
    Fixture f;
    auto small = independentAlus(1000);
    auto large = independentAlus(4000);
    MemoryHierarchy m1(f.memCfg), m2(f.memCfg);
    PentiumMPredictor b1, b2;
    CoreHooks hooks;
    OoOCore c1(f.coreCfg, m1, b1, f.noPf, hooks);
    OoOCore c2(f.coreCfg, m2, b2, f.noPf, hooks);
    c1.run(*small);
    c2.run(*large);
    EXPECT_LT(c1.stats().cycles, c2.stats().cycles);
}

TEST(Core, NextLinePrefetcherReducesIcacheStalls)
{
    Fixture f;
    // Long sequential code: next-line prefetching should help a lot.
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    for (std::size_t i = 0; i < 20000; ++i)
        b.alu(0x1000 + 4 * i);
    auto w = b.build("seq");

    MemoryHierarchy m1(f.memCfg), m2(f.memCfg);
    PentiumMPredictor b1, b2;
    CoreHooks hooks;
    PrefetcherConfig with_nl;
    with_nl.nextLineInstr = true;
    OoOCore base(f.coreCfg, m1, b1, f.noPf, hooks);
    OoOCore nl(f.coreCfg, m2, b2, with_nl, hooks);
    base.run(*w);
    nl.run(*w);
    EXPECT_LT(nl.stats().icacheStallCycles,
              base.stats().icacheStallCycles / 2);
    EXPECT_LT(nl.stats().cycles, base.stats().cycles);
}
