/**
 * @file
 * Tests for the src/check/ property harness behind `espsim fuzz`:
 * deterministic case generation, a clean case passing every oracle,
 * and — via the env-gated fault injector — the failure path (oracle
 * verdict, non-zero exit, shrinking).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "check/fuzz.hh"

using namespace espsim;

TEST(Fuzz, CaseGenerationIsDeterministic)
{
    const FuzzCase a = makeFuzzCase(99);
    const FuzzCase b = makeFuzzCase(99);
    EXPECT_EQ(a.profile.seed, b.profile.seed);
    EXPECT_EQ(a.profile.numEvents, b.profile.numEvents);
    EXPECT_EQ(a.profile.avgEventLen, b.profile.avgEventLen);
    EXPECT_EQ(a.config.name, b.config.name);

    const FuzzCase c = makeFuzzCase(100);
    EXPECT_TRUE(c.profile.seed != a.profile.seed ||
                c.profile.numEvents != a.profile.numEvents ||
                c.config.name != a.config.name);
}

TEST(Fuzz, CleanCasePassesEveryOracle)
{
    const FuzzFailure f = checkFuzzCase(makeFuzzCase(7));
    EXPECT_FALSE(f.failed()) << f.oracle << ": " << f.message;
}

TEST(Fuzz, InjectedFaultTripsTheHarness)
{
    // The fuzz profile is named "fuzz", so the injector's wildcard
    // form reaches every sweep cell the harness runs.
    ::setenv("ESPSIM_FAULT_INJECT", "fuzz:*", 1);
    const FuzzFailure f = checkFuzzCase(makeFuzzCase(7));
    EXPECT_TRUE(f.failed());
    EXPECT_EQ(f.oracle, "sweep-error");
    EXPECT_NE(f.message.find("injected fault"), std::string::npos);

    FuzzOptions opts;
    opts.runs = 1;
    opts.seed = 7;
    EXPECT_EQ(runFuzz(opts), 1);

    ::unsetenv("ESPSIM_FAULT_INJECT");
    EXPECT_EQ(runFuzz(opts), 0);
}

TEST(Fuzz, ShrinkingKeepsTheFailureWhileReducingScale)
{
    ::setenv("ESPSIM_FAULT_INJECT", "fuzz:*", 1);
    const FuzzCase c = makeFuzzCase(11);
    const FuzzCase small = shrinkFuzzCase(c, "sweep-error");
    // The shrunken point still fails the same oracle...
    EXPECT_EQ(checkFuzzCase(small).oracle, "sweep-error");
    // ...and is no larger than the original on every scale knob.
    EXPECT_LE(small.profile.numEvents, c.profile.numEvents);
    EXPECT_LE(small.profile.avgEventLen, c.profile.avgEventLen);
    EXPECT_LE(small.profile.numHandlerTypes, c.profile.numHandlerTypes);
    ::unsetenv("ESPSIM_FAULT_INJECT");
}
