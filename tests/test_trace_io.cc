/**
 * @file
 * Tests for workload serialization: lossless round-trips (including
 * divergence tails and warm sets), format validation, and robustness
 * against corrupt or truncated input.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "workload/builder.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.memAddr == b.memAddr &&
        a.branchTarget() == b.branchTarget() && a.type() == b.type() &&
        a.taken() == b.taken() && a.srcA == b.srcA && a.srcB == b.srcB &&
        a.dest == b.dest;
}

void
expectEqualWorkloads(const Workload &a, const Workload &b)
{
    ASSERT_EQ(a.numEvents(), b.numEvents());
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.warmSet().size(), b.warmSet().size());
    for (std::size_t r = 0; r < a.warmSet().size(); ++r) {
        EXPECT_EQ(a.warmSet()[r].first, b.warmSet()[r].first);
        EXPECT_EQ(a.warmSet()[r].second, b.warmSet()[r].second);
    }
    for (std::size_t e = 0; e < a.numEvents(); ++e) {
        const EventTrace &x = a.event(e);
        const EventTrace &y = b.event(e);
        ASSERT_EQ(x.size(), y.size()) << "event " << e;
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.handlerType, y.handlerType);
        EXPECT_EQ(x.handlerPc, y.handlerPc);
        EXPECT_EQ(x.argObjectAddr, y.argObjectAddr);
        EXPECT_EQ(x.divergencePoint, y.divergencePoint);
        ASSERT_EQ(x.divergedTail.size(), y.divergedTail.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            ASSERT_TRUE(sameOp(x.ops[i], y.ops[i]));
        for (std::size_t i = 0; i < x.divergedTail.size(); ++i)
            ASSERT_TRUE(sameOp(x.divergedTail[i], y.divergedTail[i]));
    }
}

} // namespace

TEST(TraceIo, RoundTripsBuilderWorkload)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000, 0x9000);
    b.aluBlock(0x1000, 5).load(0x1014, 0x5000, 3).branch(0x1018, true,
                                                         0x1100);
    b.beginEvent(0x2000);
    b.store(0x2000, 0x6000);
    b.dependsOnPrevious(0, {MicroOp{}});
    auto original = b.build("roundtrip");
    original->setWarmSet({{0x1000, 0x2000}, {0x5000, 0x7000}});

    std::stringstream buf;
    ASSERT_TRUE(writeWorkload(buf, *original));
    auto loaded = readWorkload(buf);
    ASSERT_NE(loaded, nullptr);
    expectEqualWorkloads(*original, *loaded);
}

TEST(TraceIo, RoundTripsGeneratedWorkload)
{
    AppProfile p = AppProfile::testProfile();
    p.dependencyRate = 0.3; // exercise diverged tails
    const auto original = SyntheticGenerator(p).generate();

    std::stringstream buf;
    ASSERT_TRUE(writeWorkload(buf, *original));
    auto loaded = readWorkload(buf);
    ASSERT_NE(loaded, nullptr);
    expectEqualWorkloads(*original, *loaded);
}

TEST(TraceIo, LoadedWorkloadSimulatesIdentically)
{
    const auto original =
        SyntheticGenerator(AppProfile::testProfile()).generate();
    std::stringstream buf;
    writeWorkload(buf, *original);
    auto loaded = readWorkload(buf);
    ASSERT_NE(loaded, nullptr);
    // Identical traces must produce bit-identical simulations.
    const auto a = Simulator(SimConfig::espFull(true)).run(*original);
    const auto b = Simulator(SimConfig::espFull(true)).run(*loaded);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE-this-is-not-a-trace";
    EXPECT_EQ(readWorkload(buf), nullptr);
}

TEST(TraceIo, RejectsWrongVersion)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000).alu(0x1000);
    auto w = b.build("v");
    std::stringstream buf;
    writeWorkload(buf, *w);
    std::string bytes = buf.str();
    bytes[4] = static_cast<char>(0x7f); // clobber version
    std::stringstream bad(bytes);
    EXPECT_EQ(readWorkload(bad), nullptr);
}

TEST(TraceIo, RejectsTruncation)
{
    const auto w =
        SyntheticGenerator(AppProfile::testProfile()).generate();
    std::stringstream buf;
    writeWorkload(buf, *w);
    const std::string bytes = buf.str();
    // Cut the stream at several points; every cut must fail cleanly.
    for (std::size_t cut :
         {bytes.size() / 7, bytes.size() / 3, bytes.size() - 5}) {
        std::stringstream truncated(bytes.substr(0, cut));
        EXPECT_EQ(readWorkload(truncated), nullptr) << "cut " << cut;
    }
}

TEST(TraceIo, RejectsCorruptOpType)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000).alu(0x1000);
    auto w = b.build("c");
    std::stringstream buf;
    writeWorkload(buf, *w);
    std::string bytes = buf.str();
    bytes[bytes.size() - 5] = 0x66; // op-type byte of the only op
    std::stringstream bad(bytes);
    EXPECT_EQ(readWorkload(bad), nullptr);
}

TEST(TraceIo, RejectsInsaneDivergencePoint)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000).alu(0x1000);
    b.beginEvent(0x2000).alu(0x2000).alu(0x2004);
    b.dependsOnPrevious(1, {MicroOp{}});
    auto w = b.build("d");
    std::stringstream buf;
    writeWorkload(buf, *w);
    std::string bytes = buf.str();
    // Find the second event's divergence field and blow it up: easier
    // to just flip a high byte somewhere in it via re-encode — instead
    // rewrite the whole stream with a divergence >= opCount by hand.
    // (Cheap approach: corrupt every plausible location and require
    // that no corruption yields a workload with an out-of-range
    // divergence point.)
    for (std::size_t pos = 0; pos + 1 < bytes.size(); pos += 9) {
        std::string mutated = bytes;
        mutated[pos] = static_cast<char>(0xff);
        std::stringstream in(mutated);
        auto loaded = readWorkload(in);
        if (loaded) {
            for (std::size_t e = 0; e < loaded->numEvents(); ++e) {
                const EventTrace &ev = loaded->event(e);
                if (!ev.independent())
                    EXPECT_LT(ev.divergencePoint, ev.size());
            }
        }
    }
}
