/**
 * @file
 * Tests for the observability layer added with cycle accounting: the
 * top-down cycle attributor's sum invariant across configurations,
 * per-handler attribution, prefetch-lifecycle classification on
 * synthetic streams, the suite artifact's --jobs determinism, and the
 * `espsim diff` tolerance / exit-code contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "esp/lists.hh"
#include "report/artifact.hh"
#include "report/diff.hh"
#include "report/json_reader.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

AppProfile
tinyProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-tiny";
    p.numEvents = 6;
    p.avgEventLen = 3000;
    return p;
}

Cycle
bucket(const CoreStats &stats, CycleBucket b)
{
    return stats.bucketCycles[static_cast<unsigned>(b)];
}

SimResult
runTiny(const SimConfig &config)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    return Simulator(config).run(*workload);
}

} // namespace

// --------------------------------------------------------------------
// Cycle-accounting invariant
// --------------------------------------------------------------------

TEST(Accounting, BucketsSumToTotalCyclesAcrossConfigs)
{
    const std::vector<SimConfig> configs{
        SimConfig::baseline(),      SimConfig::nextLineStride(),
        SimConfig::runaheadExec(true), SimConfig::espFull(true),
        SimConfig::espNaive(true),
    };
    for (const SimConfig &config : configs) {
        const SimResult r = runTiny(config);
        EXPECT_EQ(r.core.bucketSum(), r.core.cycles)
            << "config " << config.name;
        EXPECT_GT(bucket(r.core, CycleBucket::Retiring), 0u)
            << "config " << config.name;
    }
}

TEST(Accounting, SpeculationBucketsFollowTheEngine)
{
    const SimResult base = runTiny(SimConfig::baseline());
    EXPECT_EQ(bucket(base.core, CycleBucket::EspPreExec), 0u);
    EXPECT_EQ(bucket(base.core, CycleBucket::Runahead), 0u);

    // ESP pre-executes inside stall shadows; those cycles move out of
    // the miss buckets into the ESP bucket.
    const SimResult esp = runTiny(SimConfig::espFull(true));
    EXPECT_GT(bucket(esp.core, CycleBucket::EspPreExec), 0u);
    EXPECT_EQ(bucket(esp.core, CycleBucket::Runahead), 0u);

    const SimResult ra = runTiny(SimConfig::runaheadExec(true));
    EXPECT_GT(bucket(ra.core, CycleBucket::Runahead), 0u);
    EXPECT_EQ(bucket(ra.core, CycleBucket::EspPreExec), 0u);
}

TEST(Accounting, HandlerAttributionCoversEveryCycleAndEvent)
{
    const SimResult r = runTiny(SimConfig::espFull(true));
    CycleBucketArray summed{};
    std::uint64_t events = 0;
    for (const auto &[handler, ha] : r.core.handlerAccounting) {
        (void)handler;
        events += ha.events;
        for (unsigned b = 0; b < numCycleBuckets; ++b)
            summed[b] += ha.buckets[b];
    }
    EXPECT_EQ(events, r.core.events);
    for (unsigned b = 0; b < numCycleBuckets; ++b)
        EXPECT_EQ(summed[b], r.core.bucketCycles[b]) << "bucket " << b;
}

TEST(Accounting, BucketStatsLandInTheRegistrySnapshot)
{
    const SimResult r = runTiny(SimConfig::espFull(true));
    EXPECT_GT(r.stats.get("core.cycle_bucket.retiring"), 0.0);
    EXPECT_GT(r.stats.get("core.cycle_bucket.esp_pre_exec"), 0.0);
    double sum = 0.0;
    for (unsigned b = 0; b < numCycleBuckets; ++b) {
        sum += r.stats.get(
            std::string("core.cycle_bucket.") +
            cycleBucketName(static_cast<CycleBucket>(b)));
    }
    EXPECT_DOUBLE_EQ(sum, r.stats.get("core.cycles"));
}

// --------------------------------------------------------------------
// Prefetch lifecycle classification (synthetic streams)
// --------------------------------------------------------------------

TEST(Accounting, TimelyPrefetchEarnsLeadCycles)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    mem.prefetchData(0x400000, 0, PrefetchSource::StrideData);
    // Demand arrives long after the fill completed: timely.
    mem.accessData(0x400000, false, 500);
    const PrefetchSourceStats s =
        mem.prefetchLifecycle(PrefetchSource::StrideData);
    EXPECT_EQ(s.issued, 1u);
    EXPECT_EQ(s.timely, 1u);
    EXPECT_EQ(s.late, 0u);
    EXPECT_GT(s.avgLeadCycles(), 0.0);
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(Accounting, LatePrefetchStillCountsAsUsed)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    mem.prefetchData(0x410000, 0, PrefetchSource::StrideData);
    // Demand lands one cycle later, far before the memory fill: late.
    mem.accessData(0x410000, false, 1);
    const PrefetchSourceStats s =
        mem.prefetchLifecycle(PrefetchSource::StrideData);
    EXPECT_EQ(s.timely, 0u);
    EXPECT_EQ(s.late, 1u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(Accounting, UntouchedPrefetchScoresUselessAtFinalize)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    mem.prefetchData(0x420000, 0, PrefetchSource::EspDList);
    mem.finalizePrefetchLifecycles();
    const PrefetchSourceStats s =
        mem.prefetchLifecycle(PrefetchSource::EspDList);
    EXPECT_EQ(s.issued, 1u);
    EXPECT_EQ(s.useless, 1u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);
}

TEST(Accounting, PrefetchEvictingDemandLiveBlockIsHarmful)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    // L1-D: 32 KB, 2-way, 64 B blocks -> 256 sets; addresses 16 KB
    // apart share a set. Two demand blocks fill the set, then two
    // prefetches displace them while still demand-live.
    constexpr Addr setStride = 256 * blockBytes;
    const Addr d0 = 0x800000;
    const Addr d1 = d0 + setStride;
    mem.accessData(d0, false, 0);
    mem.accessData(d1, false, 1);
    mem.prefetchData(d0 + 2 * setStride, 2, PrefetchSource::EspDList);
    mem.prefetchData(d0 + 3 * setStride, 3, PrefetchSource::EspDList);
    const PrefetchSourceStats s =
        mem.prefetchLifecycle(PrefetchSource::EspDList);
    EXPECT_EQ(s.issued, 2u);
    EXPECT_EQ(s.harmful, 2u);
}

TEST(Accounting, LifecycleStatsAppearInSimulatorSnapshot)
{
    const SimResult r = runTiny(SimConfig::espFull(true));
    // ESP ran with its lists on, so the I-list issued prefetches and
    // their lifecycle stats are part of the canonical surface.
    EXPECT_GT(r.stats.get("mem.prefetch.esp_ilist.issued"), 0.0);
    const double timely = r.stats.get("mem.prefetch.esp_ilist.timely");
    const double late = r.stats.get("mem.prefetch.esp_ilist.late");
    const double useless =
        r.stats.get("mem.prefetch.esp_ilist.useless");
    EXPECT_LE(timely + late + useless,
              r.stats.get("mem.prefetch.esp_ilist.issued") + 0.5);
}

// --------------------------------------------------------------------
// ESP list encoding outcomes
// --------------------------------------------------------------------

TEST(Accounting, AppendOutcomesClassifyEncoding)
{
    AddressList list(0); // unbounded
    AppendOutcome out;
    EXPECT_TRUE(list.append(0x1000, 0, &out));
    EXPECT_EQ(out, AppendOutcome::NewRecord);
    EXPECT_TRUE(list.append(0x1004, 1, &out)); // same block
    EXPECT_EQ(out, AppendOutcome::Retouch);
    EXPECT_TRUE(list.append(0x1040, 2, &out)); // next block
    EXPECT_EQ(out, AppendOutcome::RunExtended);
    EXPECT_TRUE(list.append(0x2000, 3, &out)); // small delta
    EXPECT_EQ(out, AppendOutcome::NewRecord);
    EXPECT_TRUE(list.append(0x200000, 4, &out)); // > 127 blocks away
    EXPECT_EQ(out, AppendOutcome::NewRecordEscaped);
}

TEST(Accounting, AppendReportsRejectedWhenFull)
{
    // 64 bits: room for the first (full-address, 3x19-bit) entry
    // only; a second far-away entry cannot be charged.
    AddressList list(8);
    AppendOutcome out;
    EXPECT_TRUE(list.append(0x1000, 0, &out));
    EXPECT_EQ(out, AppendOutcome::NewRecord);
    EXPECT_FALSE(list.append(0x900000, 1, &out));
    EXPECT_EQ(out, AppendOutcome::Rejected);
}

// --------------------------------------------------------------------
// Artifact determinism across --jobs
// --------------------------------------------------------------------

TEST(Accounting, SuiteArtifactIdenticalAcrossJobs)
{
    const std::vector<AppProfile> apps{tinyProfile()};
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::espFull(true)};
    SuiteRunner serial(apps);
    serial.setJobs(1);
    SuiteRunner parallel(apps);
    parallel.setJobs(8);
    const auto rows1 = serial.run(configs);
    const auto rows8 = parallel.run(configs);

    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "fixed";
    manifest.buildType = "fixed";
    const std::string a1 =
        renderSuiteArtifactJson(manifest, configs, rows1);
    const std::string a8 =
        renderSuiteArtifactJson(manifest, configs, rows8);
    EXPECT_EQ(a1, a8);

    const auto j1 = parseJson(a1);
    const auto j8 = parseJson(a8);
    ASSERT_TRUE(j1 && j8);
    const DiffResult d = diffSuiteArtifacts(*j1, *j8);
    EXPECT_EQ(d.exitCode(), 0);
    EXPECT_TRUE(d.drifts.empty());
    EXPECT_GT(d.statsCompared, 0u);
}

// --------------------------------------------------------------------
// espsim diff: tolerance and exit-code matrix
// --------------------------------------------------------------------

namespace
{

std::string
fakeArtifact(const std::string &hash, double cycles,
             double dcacheBucket, double ipc,
             bool includeSecondPoint = false,
             const std::string &extraStat = "")
{
    std::string s =
        R"({"schema":"espsim-suite-artifact","format_version":1,)";
    s += R"("manifest":{"source":"test","tool_version":"v1",)";
    s += R"("build_type":"Release","config_hash":")" + hash +
        R"(","apps":["a"],"configs":["c"],"points":1},"results":[)";
    s += R"({"app":"a","config":"c","stats":{)";
    s += R"("core.cycles":)" + std::to_string(cycles);
    s += R"(,"core.cycle_bucket.dcache_miss":)" +
        std::to_string(dcacheBucket);
    s += R"(,"core.cycle_bucket.retiring":)" +
        std::to_string(cycles - dcacheBucket);
    s += R"(,"derived.ipc":)" + std::to_string(ipc);
    if (!extraStat.empty())
        s += "," + extraStat;
    s += "}}";
    if (includeSecondPoint)
        s += R"(,{"app":"b","config":"c","stats":{"core.cycles":100}})";
    s += "]}";
    return s;
}

DiffResult
diffStrings(const std::string &base, const std::string &cand,
            const DiffOptions &opts = {})
{
    const auto b = parseJson(base);
    const auto c = parseJson(cand);
    EXPECT_TRUE(b && c);
    return diffSuiteArtifacts(*b, *c, opts);
}

} // namespace

TEST(Diff, IdenticalArtifactsExitZero)
{
    const std::string a = fakeArtifact("h", 1000, 200, 1.5);
    const DiffResult d = diffStrings(a, a);
    EXPECT_EQ(d.exitCode(), 0);
    EXPECT_TRUE(d.drifts.empty());
    EXPECT_EQ(d.pointsCompared, 1u);
}

TEST(Diff, HeadlineDriftFailsAndIsAttributedToBuckets)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5);
    const std::string cand = fakeArtifact("h", 1100, 300, 1.5);
    const DiffResult d = diffStrings(base, cand);
    EXPECT_EQ(d.exitCode(), 1);
    EXPECT_GE(d.headlineRegressions, 1u);
    bool found = false;
    for (const StatDrift &drift : d.drifts) {
        if (drift.stat != "core.cycles")
            continue;
        found = true;
        EXPECT_TRUE(drift.headline);
        EXPECT_NEAR(drift.relDrift, 0.1, 1e-9);
        // The drift is explained through the accounting buckets.
        EXPECT_NE(drift.attribution.find("dcache_miss +100"),
                  std::string::npos)
            << drift.attribution;
    }
    EXPECT_TRUE(found);
}

TEST(Diff, RelativeToleranceAbsorbsHeadlineDrift)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5);
    const std::string cand = fakeArtifact("h", 1100, 300, 1.5);
    DiffOptions opts;
    opts.relTol = 0.6; // covers even the 50% bucket move
    const DiffResult d = diffStrings(base, cand, opts);
    EXPECT_EQ(d.exitCode(), 0);
    EXPECT_EQ(d.headlineRegressions, 0u);
    EXPECT_TRUE(d.drifts.empty());
}

TEST(Diff, HeadlineToleranceOverridesGeneralTolerance)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5);
    const std::string cand = fakeArtifact("h", 1100, 300, 1.5);
    DiffOptions opts;
    opts.relTol = 0.6;
    opts.headlineRelTol = 0.01; // stricter just for headline stats
    const DiffResult d = diffStrings(base, cand, opts);
    EXPECT_EQ(d.exitCode(), 1);
    EXPECT_GE(d.headlineRegressions, 1u);
}

TEST(Diff, NonHeadlineDriftIsReportedButPasses)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5, false,
                                          R"("mem.extra":10)");
    const std::string cand = fakeArtifact("h", 1000, 200, 1.5, false,
                                          R"("mem.extra":20)");
    const DiffResult d = diffStrings(base, cand);
    EXPECT_EQ(d.exitCode(), 0);
    ASSERT_EQ(d.drifts.size(), 1u);
    EXPECT_EQ(d.drifts[0].stat, "mem.extra");
    EXPECT_FALSE(d.drifts[0].headline);
}

TEST(Diff, ConfigHashMismatchFailsUnlessIgnored)
{
    const std::string base = fakeArtifact("aaaa", 1000, 200, 1.5);
    const std::string cand = fakeArtifact("bbbb", 1000, 200, 1.5);
    const DiffResult strict = diffStrings(base, cand);
    EXPECT_EQ(strict.exitCode(), 1);
    EXPECT_FALSE(strict.configHashMatch);

    DiffOptions opts;
    opts.ignoreConfigHash = true;
    const DiffResult relaxed = diffStrings(base, cand, opts);
    EXPECT_EQ(relaxed.exitCode(), 0);
}

TEST(Diff, MissingPointFailsTheGate)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5, true);
    const std::string cand = fakeArtifact("h", 1000, 200, 1.5, false);
    const DiffResult d = diffStrings(base, cand);
    EXPECT_EQ(d.exitCode(), 1);
    bool found = false;
    for (const StatDrift &drift : d.drifts)
        found |= drift.onlyInBaseline && drift.app == "b";
    EXPECT_TRUE(found);
}

TEST(Diff, UnreadableInputExitsTwo)
{
    const DiffResult d = diffSuiteArtifactFiles(
        "/nonexistent/base.json", "/nonexistent/cand.json");
    EXPECT_EQ(d.exitCode(), 2);
    EXPECT_FALSE(d.loaded);
    EXPECT_FALSE(d.error.empty());
}

TEST(Diff, NonArtifactDocumentExitsTwo)
{
    const auto bogus = parseJson(R"({"schema":"something-else"})");
    const auto good = parseJson(fakeArtifact("h", 1000, 200, 1.5));
    ASSERT_TRUE(bogus && good);
    const DiffResult d = diffSuiteArtifacts(*bogus, *good);
    EXPECT_EQ(d.exitCode(), 2);
}

TEST(Diff, ReportRendersDriftTable)
{
    const std::string base = fakeArtifact("h", 1000, 200, 1.5);
    const std::string cand = fakeArtifact("h", 1100, 300, 1.5);
    const DiffResult d = diffStrings(base, cand);
    const std::string report = renderDiffReport(d);
    EXPECT_NE(report.find("core.cycles"), std::string::npos);
    EXPECT_NE(report.find("[headline]"), std::string::npos);
    EXPECT_NE(report.find("headline regressions:"), std::string::npos);
}
