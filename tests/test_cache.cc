/**
 * @file
 * Unit and property tests for the set-associative cache and the ESP
 * cachelets (way reservation / rotation / isolation).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/cachelet.hh"
#include "common/rng.hh"

using namespace espsim;

TEST(Cache, HitAfterInsert)
{
    SetAssocCache c({"t", 1024, 2, 1});
    EXPECT_FALSE(c.lookup(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.contains(0x1040 - 1)); // same block
    EXPECT_FALSE(c.contains(0x1040));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2 ways, 8 sets (1 KB): addresses with equal set index conflict.
    SetAssocCache c({"t", 1024, 2, 1});
    const Addr set_stride = 8 * blockBytes;
    const Addr a = 0, b = set_stride, d = 2 * set_stride;
    c.insert(a);
    c.insert(b);
    EXPECT_TRUE(c.lookup(a)); // a is now MRU
    c.insert(d);              // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, InsertExistingRefreshesLru)
{
    SetAssocCache c({"t", 1024, 2, 1});
    const Addr set_stride = 8 * blockBytes;
    const Addr a = 0, b = set_stride, d = 2 * set_stride;
    c.insert(a);
    c.insert(b);
    c.insert(a); // refresh a
    c.insert(d); // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
}

TEST(Cache, InvalidateAllEmptiesPopulation)
{
    SetAssocCache c({"t", 4096, 4, 1});
    for (Addr a = 0; a < 4096; a += blockBytes)
        c.insert(a);
    EXPECT_EQ(c.population(), 64u);
    c.invalidateAll();
    EXPECT_EQ(c.population(), 0u);
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, PopulationNeverExceedsCapacity)
{
    SetAssocCache c({"t", 2048, 2, 1});
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        c.insert(rng.below(1 << 20) * blockBytes);
    EXPECT_LE(c.population(), c.geometry().numBlocks());
}

TEST(CacheDeathTest, BadGeometryFatals)
{
    EXPECT_DEATH(SetAssocCache({"t", 1000, 3, 1}), "not divisible");
    EXPECT_DEATH(SetAssocCache({"t", 1024, 0, 1}), "associativity");
}

/**
 * Property test: a fully-associative SetAssocCache (one set) must
 * behave exactly like a reference LRU list for any access sequence.
 */
TEST(CacheProperty, FullyAssociativeMatchesReferenceLru)
{
    const unsigned ways = 8;
    SetAssocCache c({"t", ways * blockBytes, ways, 1});
    std::vector<Addr> reference; // front = MRU

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(32) * blockBytes;
        // Reference model.
        bool ref_hit = false;
        for (std::size_t j = 0; j < reference.size(); ++j) {
            if (reference[j] == addr) {
                reference.erase(reference.begin() + j);
                ref_hit = true;
                break;
            }
        }
        reference.insert(reference.begin(), addr);
        if (reference.size() > ways)
            reference.pop_back();

        const bool hit = c.lookup(addr);
        ASSERT_EQ(hit, ref_hit) << "iteration " << i;
        if (!hit)
            c.insert(addr);
    }
}

/** Geometry sweep: hits/misses are consistent for every shape. */
class CacheGeometrySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>>
{
};

TEST_P(CacheGeometrySweep, SequentialFillThenRescanHits)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache c({"t", size, assoc, 1});
    const std::size_t blocks = size / blockBytes;
    // Fill exactly to capacity with one pass...
    for (std::size_t i = 0; i < blocks; ++i)
        c.insert(i * blockBytes);
    // ...every block must still be resident (no self-eviction).
    for (std::size_t i = 0; i < blocks; ++i)
        ASSERT_TRUE(c.contains(i * blockBytes)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometrySweep,
    ::testing::Values(std::pair<std::size_t, unsigned>{1024, 2},
                      std::pair<std::size_t, unsigned>{2048, 4},
                      std::pair<std::size_t, unsigned>{32 * 1024, 2},
                      std::pair<std::size_t, unsigned>{6 * 1024, 12},
                      std::pair<std::size_t, unsigned>{64 * 1024, 16}));

// --- Cachelet ------------------------------------------------------

TEST(Cachelet, PartitionIsolation)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    c.insertFor(EspDepth::Esp1, 0x1000);
    c.insertFor(EspDepth::Esp2, 0x2000);
    EXPECT_TRUE(c.lookupFor(EspDepth::Esp1, 0x1000));
    EXPECT_FALSE(c.lookupFor(EspDepth::Esp2, 0x1000));
    EXPECT_TRUE(c.lookupFor(EspDepth::Esp2, 0x2000));
    EXPECT_FALSE(c.lookupFor(EspDepth::Esp1, 0x2000));
}

TEST(Cachelet, Esp2OwnsExactlyOneWay)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    // Insert many conflicting blocks for ESP-2: only one way per set,
    // so at most numSets blocks survive.
    const std::size_t sets = c.geometry().numSets();
    for (Addr i = 0; i < 64; ++i)
        c.insertFor(EspDepth::Esp2, i * blockBytes);
    std::size_t resident = 0;
    for (Addr i = 0; i < 64; ++i)
        resident += c.contains(i * blockBytes);
    EXPECT_LE(resident, sets);
}

TEST(Cachelet, RotationPromotesEsp2Blocks)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    const unsigned before = c.reservedWay();
    c.insertFor(EspDepth::Esp2, 0x4000);
    c.rotateReservedWay();
    EXPECT_NE(c.reservedWay(), before);
    // The promoted block now belongs to the ESP-1 partition.
    EXPECT_TRUE(c.lookupFor(EspDepth::Esp1, 0x4000));
    // And the fresh ESP-2 way is clean.
    EXPECT_FALSE(c.lookupFor(EspDepth::Esp2, 0x4000));
}

TEST(Cachelet, RotationClearsNewReservedWay)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    // Fill ESP-1 ways heavily.
    for (Addr i = 0; i < 256; ++i)
        c.insertFor(EspDepth::Esp1, i * blockBytes);
    c.rotateReservedWay();
    // New ESP-2 partition must not see stale ESP-1 blocks.
    std::size_t hits = 0;
    for (Addr i = 0; i < 256; ++i)
        hits += c.lookupFor(EspDepth::Esp2, i * blockBytes);
    EXPECT_EQ(hits, 0u);
}

TEST(Cachelet, DoubleRotationRoundTrips)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    const unsigned w0 = c.reservedWay();
    c.rotateReservedWay();
    c.rotateReservedWay();
    EXPECT_EQ(c.reservedWay(), w0);
}

TEST(Cachelet, InvalidateForDepth)
{
    Cachelet c({"cl", 6 * 1024, 12, 2});
    c.insertFor(EspDepth::Esp1, 0x1000);
    c.insertFor(EspDepth::Esp2, 0x2000);
    c.invalidateFor(EspDepth::Esp1);
    EXPECT_FALSE(c.lookupFor(EspDepth::Esp1, 0x1000));
    EXPECT_TRUE(c.lookupFor(EspDepth::Esp2, 0x2000));
}

TEST(CacheletDeathTest, NeedsTwoWays)
{
    EXPECT_DEATH(Cachelet({"cl", 64, 1, 1}), "at least 2 ways");
}
