/**
 * @file
 * Focused tests for ESP controller internals not covered by the
 * behavioural suite: prefetch-lead timing, list promotion with
 * capacity rebuild, ideal-mode semantics, branch-policy plumbing,
 * config accounting, and the naive strawman's predictor sharing.
 */

#include <gtest/gtest.h>

#include "esp/controller.hh"
#include "workload/builder.hh"

using namespace espsim;

namespace
{

/** Two events; the second's ops are far apart so lead timing shows. */
std::unique_ptr<InMemoryWorkload>
twoEvents(std::size_t second_len = 600)
{
    WorkloadBuilder b;
    b.beginEvent(0x100000);
    for (int i = 0; i < 50; ++i) {
        b.aluBlock(0x100000 + 256 * i, 6);
        b.load(0x100000 + 256 * i + 24, 0x8000000 + 4096 * i, 1);
    }
    b.beginEvent(0x400000);
    for (std::size_t i = 0; i < second_len; ++i)
        b.alu(0x400000 + 4 * i);
    return b.build("two");
}

StallContext
stall(Cycle idle = 100000)
{
    StallContext ctx;
    ctx.kind = StallKind::DataLlcMiss;
    ctx.idleCycles = idle;
    return ctx;
}

} // namespace

TEST(EspDetail, PrefetchLeadGatesConsumption)
{
    // With a tiny lead, list prefetches for ops far into the event
    // must not fire until beforeOp approaches their instCount.
    std::unique_ptr<InMemoryWorkload> w = twoEvents(600);
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.prefetchLeadInstructions = 32;
    EspController esp(cfg, mem, bp, *w, 4);

    esp.onEventStart(0, 0);
    for (int k = 0; k < 10; ++k)
        esp.onStall(stall());
    esp.onEventEnd(0, 50'000);
    esp.onEventStart(1, 50'100);
    const double at_start = esp.stats().listPrefetchesInstr;
    // Walk the event; more prefetches must drain as we advance.
    for (std::size_t i = 0; i < 300; ++i)
        esp.beforeOp(i, w->event(1).ops[i], 51'000 + i);
    const double mid = esp.stats().listPrefetchesInstr;
    EXPECT_GT(mid, at_start);

    // A huge lead issues everything at event start instead.
    MemoryHierarchy mem2{HierarchyConfig{}};
    PentiumMPredictor bp2;
    EspConfig cfg2;
    cfg2.prefetchLeadInstructions = 1'000'000;
    EspController esp2(cfg2, mem2, bp2, *w, 4);
    esp2.onEventStart(0, 0);
    for (int k = 0; k < 10; ++k)
        esp2.onStall(stall());
    esp2.onEventEnd(0, 50'000);
    esp2.onEventStart(1, 50'100);
    const double eager = esp2.stats().listPrefetchesInstr;
    EXPECT_GE(eager, mid);
}

TEST(EspDetail, IdealModeBypassesCapacities)
{
    std::unique_ptr<InMemoryWorkload> w = twoEvents();
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.ideal = true;
    EspController esp(cfg, mem, bp, *w, 4);
    esp.onEventStart(0, 0);
    for (int k = 0; k < 20; ++k)
        esp.onStall(stall());
    EXPECT_EQ(esp.stats().iListOverflows, 0u);
    EXPECT_EQ(esp.stats().dListOverflows, 0u);
    EXPECT_EQ(esp.stats().bListOverflows, 0u);
}

TEST(EspDetail, NaiveModeSharesPredictorContext)
{
    // In naive mode, pre-execution perturbs the normal PIR/RAS: a call
    // pre-executed speculatively leaves its return address on the
    // architectural RAS.
    WorkloadBuilder b;
    b.beginEvent(0x100000);
    b.aluBlock(0x100000, 8);
    b.load(0x100020, 0x8000000, 1);
    b.beginEvent(0x200000);
    b.call(0x200000, 0x300000);
    b.aluBlock(0x300000, 8);
    auto w = b.build("naive");

    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.naiveMode = true;
    cfg.branchPolicy = BranchPolicy::NoExtraHardware;
    EspController esp(cfg, mem, bp, *w, 4);
    esp.onEventStart(0, 0);
    esp.onStall(stall());
    EXPECT_FALSE(bp.context().ras.empty());

    // The clean design leaves the architectural context untouched.
    MemoryHierarchy mem2{HierarchyConfig{}};
    PentiumMPredictor bp2;
    EspConfig clean;
    EspController esp2(clean, mem2, bp2, *w, 4);
    esp2.onEventStart(0, 0);
    esp2.onStall(stall());
    EXPECT_TRUE(bp2.context().ras.empty());
}

TEST(EspDetail, ReplicaPolicyAdoptsTablesOnPromotion)
{
    WorkloadBuilder b;
    b.beginEvent(0x100000);
    b.aluBlock(0x100000, 8);
    b.load(0x100020, 0x8000000, 1);
    b.beginEvent(0x200000);
    for (int i = 0; i < 40; ++i) {
        b.aluBlock(0x200000 + 64 * i, 6);
        b.branch(0x200000 + 64 * i + 24, true, 0x200000 + 64 * (i + 1));
    }
    auto w = b.build("replica");

    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.branchPolicy = BranchPolicy::SeparatePirAndTables;
    cfg.useBList = false;
    EspController esp(cfg, mem, bp, *w, 4);
    esp.onEventStart(0, 0);
    for (int k = 0; k < 6; ++k)
        esp.onStall(stall());
    // Before promotion the main predictor is still cold on event 1's
    // branches (the replica absorbed the training)...
    MicroOp probe = w->event(1).ops[6]; // a taken branch
    ASSERT_TRUE(probe.isBranchOp());
    EXPECT_EQ(bp.predictOnly(probe).target, 0u);
    // ...after promotion the replica's tables are adopted.
    esp.onEventEnd(0, 9000);
    EXPECT_EQ(bp.predictOnly(probe).target, probe.branchTarget());
}

TEST(EspDetail, ListBytesHonorsIdealAndDepth)
{
    EspConfig cfg;
    EXPECT_EQ(cfg.listBytes(cfg.iListBytes, 0), 499u);
    EXPECT_EQ(cfg.listBytes(cfg.iListBytes, 1), 68u);
    // Depths beyond the provisioned two reuse the deepest capacity.
    EXPECT_EQ(cfg.listBytes(cfg.iListBytes, 5), 68u);
    cfg.ideal = true;
    EXPECT_EQ(cfg.listBytes(cfg.iListBytes, 0), 0u); // unbounded
}

TEST(EspDetail, PromotionRebuildTruncatesToEsp1Capacity)
{
    // Pre-execute deep enough that the ESP-2 slot records entries,
    // then promote twice and confirm the controller never overflows
    // its rebuilt capacities (it would panic or mis-count otherwise).
    WorkloadBuilder b;
    for (int e = 0; e < 4; ++e) {
        const Addr code = 0x100000 * (e + 1);
        b.beginEvent(code);
        for (int i = 0; i < 60; ++i) {
            b.aluBlock(code + 512 * i, 6);
            b.load(code + 512 * i + 24, 0x8000000 + 0x40000 * e + 512 * i,
                   1);
        }
    }
    auto w = b.build("promote");
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspController esp(EspConfig{}, mem, bp, *w, 4);
    esp.onEventStart(0, 0);
    for (int k = 0; k < 30; ++k)
        esp.onStall(stall());
    esp.onEventEnd(0, 100'000);
    esp.onEventStart(1, 100'100);
    for (int k = 0; k < 30; ++k)
        esp.onStall(stall());
    esp.onEventEnd(1, 200'000);
    esp.onEventStart(2, 200'100);
    for (std::size_t i = 0; i < 100; ++i)
        esp.beforeOp(i, w->event(2).ops[i], 201'000 + i);
    EXPECT_GT(esp.stats().listPrefetchesInstr, 0u);
    EXPECT_GE(esp.stats().eventsPreExecuted, 2u);
}

TEST(EspDetail, DeeperThanProvisionedDepthsUseTrackingSets)
{
    // maxDepth 4: depths 3 and 4 have no physical cachelet partition
    // and must still pre-execute (via unbounded tracking sets).
    WorkloadBuilder b;
    for (int e = 0; e < 6; ++e) {
        const Addr code = 0x100000 * (e + 1);
        b.beginEvent(code);
        b.aluBlock(code, 8);
        b.load(code + 32, 0x8000000 + 0x10000 * e, 1);
        b.aluBlock(code + 64, 8);
    }
    auto w = b.build("deep");
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.maxDepth = 4;
    EspController esp(cfg, mem, bp, *w, 4);
    esp.onEventStart(0, 0);
    for (int k = 0; k < 10; ++k)
        esp.onStall(stall());
    EXPECT_GE(esp.stats().eventsPreExecuted, 3u);
}

TEST(EspDetailDeathTest, ZeroDepthFatals)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000).alu(0x1000);
    auto w = b.build("z");
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    cfg.maxDepth = 0;
    EXPECT_DEATH(EspController(cfg, mem, bp, *w, 4), "maxDepth");
}

TEST(EspDetail, RefillPreservesEuAndResetsIncorrectPrediction)
{
    WorkloadBuilder b;
    for (int e = 0; e < 4; ++e) {
        b.beginEvent(0x100000 + 0x1000 * e);
        b.aluBlock(0x100000 + 0x1000 * e, 8);
    }
    const auto w = b.build("queue");

    HardwareEventQueue q;
    q.refill(*w, 0); // queue shows events 1 and 2
    ASSERT_TRUE(q.entry(0).valid);
    ASSERT_TRUE(q.entry(1).valid);
    EXPECT_EQ(q.entry(0).eventIdx, 1u);
    EXPECT_EQ(q.entry(1).eventIdx, 2u);

    // A pre-execution is underway on both entries, and the runtime
    // has flagged a misprediction on the first.
    q.entry(0).executionUnderway = true;
    q.entry(0).incorrectPrediction = true;
    q.entry(1).executionUnderway = true;

    // Refilling with the same current event must keep the EU bits
    // (the pre-executions are still running) but clear the
    // incorrect-prediction veto, which is per-enqueue state.
    q.refill(*w, 0);
    EXPECT_TRUE(q.entry(0).executionUnderway);
    EXPECT_FALSE(q.entry(0).incorrectPrediction);
    EXPECT_TRUE(q.entry(1).executionUnderway);

    // Advancing the current event slides different events into the
    // slots; a stale EU bit must not survive onto a new event.
    q.refill(*w, 1);
    EXPECT_EQ(q.entry(0).eventIdx, 2u);
    EXPECT_FALSE(q.entry(0).executionUnderway);
    EXPECT_EQ(q.entry(1).eventIdx, 3u);
    EXPECT_FALSE(q.entry(1).executionUnderway);

    // Past the end of the stream the entries invalidate.
    q.refill(*w, 3);
    EXPECT_FALSE(q.entry(0).valid);
    EXPECT_FALSE(q.entry(1).valid);
}
