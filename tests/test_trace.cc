/**
 * @file
 * Unit tests for event traces, the speculative view, workload
 * containers, and the WorkloadBuilder public API.
 */

#include <gtest/gtest.h>

#include "trace/event_trace.hh"
#include "trace/workload.hh"
#include "workload/builder.hh"

using namespace espsim;

namespace
{

EventTrace
makeTrace(std::size_t n)
{
    EventTrace t;
    for (std::size_t i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x1000 + 4 * i;
        t.ops.push_back(op);
    }
    return t;
}

} // namespace

TEST(EventTrace, IndependentSpecViewIsIdentity)
{
    EventTrace t = makeTrace(10);
    EXPECT_TRUE(t.independent());
    EXPECT_EQ(t.speculativeSize(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(t.speculativeOp(i).pc, t.ops[i].pc);
    EXPECT_DOUBLE_EQ(t.speculativeMatchFraction(), 1.0);
}

TEST(EventTrace, DivergedTailReplacesSuffix)
{
    EventTrace t = makeTrace(10);
    t.divergencePoint = 6;
    MicroOp bad;
    bad.pc = 0xdead0000;
    t.divergedTail = {bad, bad};
    EXPECT_FALSE(t.independent());
    EXPECT_EQ(t.speculativeSize(), 8u);
    EXPECT_EQ(t.speculativeOp(5).pc, t.ops[5].pc);
    EXPECT_EQ(t.speculativeOp(6).pc, 0xdead0000u);
    EXPECT_EQ(t.speculativeOp(7).pc, 0xdead0000u);
    EXPECT_NEAR(t.speculativeMatchFraction(), 6.0 / 8.0, 1e-12);
}

TEST(EventTraceDeathTest, SpecOpOutOfRangePanics)
{
    EventTrace t = makeTrace(4);
    EXPECT_DEATH((void)t.speculativeOp(4), "out of range");
}

TEST(Workload, TotalsAndIndependence)
{
    std::vector<EventTrace> events;
    events.push_back(makeTrace(5));
    EventTrace dep = makeTrace(7);
    dep.id = 1;
    dep.divergencePoint = 3;
    dep.divergedTail = {MicroOp{}};
    events.push_back(std::move(dep));
    InMemoryWorkload w("t", std::move(events));
    EXPECT_EQ(w.numEvents(), 2u);
    EXPECT_EQ(w.totalInstructions(), 12u);
    EXPECT_DOUBLE_EQ(w.independentEventFraction(), 0.5);
    EXPECT_TRUE(w.warmSet().empty());
}

TEST(Workload, WarmSetRoundTrip)
{
    InMemoryWorkload w("t", {makeTrace(1)});
    w.setWarmSet({{0x1000, 0x2000}});
    ASSERT_EQ(w.warmSet().size(), 1u);
    EXPECT_EQ(w.warmSet()[0].first, 0x1000u);
}

TEST(WorkloadDeathTest, OutOfRangeEventPanics)
{
    InMemoryWorkload w("t", {makeTrace(1)});
    EXPECT_DEATH((void)w.event(1), "out of range");
}

TEST(Builder, BuildsEventsInOrder)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000, 0x9000);
    b.aluBlock(0x1000, 3);
    b.load(0x100c, 0x5000, 2);
    b.branch(0x1010, true, 0x1100);
    b.beginEvent(0x2000);
    b.alu(0x2000);
    auto w = b.build("custom");

    EXPECT_EQ(w->name(), "custom");
    ASSERT_EQ(w->numEvents(), 2u);
    const EventTrace &e0 = w->event(0);
    EXPECT_EQ(e0.handlerPc, 0x1000u);
    EXPECT_EQ(e0.argObjectAddr, 0x9000u);
    ASSERT_EQ(e0.size(), 5u);
    EXPECT_EQ(e0.ops[3].type(), OpType::Load);
    EXPECT_EQ(e0.ops[3].memAddr, 0x5000u);
    EXPECT_EQ(e0.ops[3].dest, 2);
    EXPECT_TRUE(e0.ops[4].taken());
    EXPECT_EQ(e0.ops[4].branchTarget(), 0x1100u);
    EXPECT_EQ(w->event(1).id, 1u);
}

TEST(Builder, CallAndReturnOps)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.call(0x1000, 0x2000).ret(0x2000, 0x1004);
    auto w = b.build("cr");
    const EventTrace &e = w->event(0);
    EXPECT_EQ(e.ops[0].type(), OpType::Call);
    EXPECT_EQ(e.ops[1].type(), OpType::Return);
    EXPECT_EQ(e.ops[1].branchTarget(), 0x1004u);
}

TEST(Builder, DependsOnPreviousSetsDivergence)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.alu(0x1000);
    b.beginEvent(0x2000);
    b.aluBlock(0x2000, 4);
    b.dependsOnPrevious(2, {MicroOp{}});
    auto w = b.build("dep");
    EXPECT_TRUE(w->event(0).independent());
    EXPECT_FALSE(w->event(1).independent());
    EXPECT_EQ(w->event(1).divergencePoint, 2u);
    EXPECT_EQ(w->event(1).speculativeSize(), 3u);
}

TEST(Builder, CurrentEventSize)
{
    WorkloadBuilder b;
    EXPECT_EQ(b.currentEventSize(), 0u);
    b.beginEvent(0x1000).aluBlock(0x1000, 7);
    EXPECT_EQ(b.currentEventSize(), 7u);
}

TEST(BuilderDeathTest, OpBeforeBeginEventFatals)
{
    WorkloadBuilder b;
    EXPECT_DEATH(b.alu(0x1000), "beginEvent");
}

TEST(BuilderDeathTest, FirstEventCannotDepend)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000).alu(0x1000);
    EXPECT_DEATH(b.dependsOnPrevious(0, {}), "no predecessor");
}

TEST(BuilderDeathTest, EmptyBuildFatals)
{
    WorkloadBuilder b;
    EXPECT_DEATH((void)b.build("x"), "no events");
}
