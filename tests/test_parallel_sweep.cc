/**
 * @file
 * Tests for the parallel sweep engine: JobPool basics, bit-identical
 * suite results at any thread count, and concurrent replay of one
 * shared workload (eager and lazy) from multiple simulator threads.
 *
 * These tests carry the "tsan" ctest label; build with
 * -DESPSIM_SANITIZE=thread and run `ctest -L tsan` to check them for
 * data races.
 */

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/job_pool.hh"
#include "report/artifact.hh"
#include "sim/stats_report.hh"
#include "workload/lazy.hh"

using namespace espsim;

namespace
{

/** Two small, distinct apps — enough to exercise per-app sharing. */
std::vector<AppProfile>
twoAppSuite()
{
    AppProfile a = AppProfile::testProfile();
    a.name = "alpha";
    a.numEvents = 30;

    AppProfile b = AppProfile::testProfile();
    b.name = "beta";
    b.seed = a.seed + 17;
    b.numEvents = 30;
    b.avgEventLen *= 1.5;

    return {a, b};
}

/** The Figure 9 design-point set. */
std::vector<SimConfig>
fig9Configs()
{
    return {
        SimConfig::baseline(),       SimConfig::nextLine(),
        SimConfig::nextLineStride(), SimConfig::runaheadExec(false),
        SimConfig::runaheadExec(true), SimConfig::espFull(false),
        SimConfig::espFull(true),
    };
}

} // namespace

TEST(JobPool, RunsEveryJob)
{
    JobPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(JobPool, SingleThreadRunsInline)
{
    JobPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller); // executed during submit, serially
    pool.wait();
}

TEST(JobPool, WaitIsReusable)
{
    JobPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { ++count; });
    pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelSweep, DeterministicAcrossJobCounts)
{
    const auto configs = fig9Configs();
    SuiteRunner runner(twoAppSuite());

    runner.setJobs(1);
    const auto serial = runner.run(configs);
    runner.setJobs(4);
    const auto parallel = runner.run(configs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        EXPECT_EQ(serial[r].app, parallel[r].app);
        ASSERT_EQ(serial[r].results.size(), parallel[r].results.size());
        for (std::size_t c = 0; c < serial[r].results.size(); ++c) {
            const SimResult &s = serial[r].results[c];
            const SimResult &p = parallel[r].results[c];
            EXPECT_EQ(s.configName, p.configName) << r << "," << c;
            EXPECT_EQ(s.workloadName, p.workloadName);
            // Bit-identical, not approximately equal.
            EXPECT_EQ(s.cycles, p.cycles) << r << "," << c;
            EXPECT_EQ(s.ipc, p.ipc) << r << "," << c;
            EXPECT_EQ(s.l1iMpki, p.l1iMpki);
            EXPECT_EQ(s.mispredictRate, p.mispredictRate);
        }
    }
}

TEST(ParallelSweep, MoreJobsThanPoints)
{
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::espFull(true)};
    SuiteRunner runner(twoAppSuite());
    runner.setJobs(64); // clamped to the 4 points internally
    const auto rows = runner.run(configs);
    ASSERT_EQ(rows.size(), 2u);
    for (const SuiteRow &row : rows) {
        ASSERT_EQ(row.results.size(), 2u);
        EXPECT_GT(row.results[0].cycles, 0u);
        EXPECT_GT(row.results[1].cycles, 0u);
    }
}

TEST(ParallelSweep, SharedEagerWorkloadConcurrentReplay)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 30;
    const auto workload = SyntheticGenerator(p).generate();

    const SimResult ref_a =
        Simulator(SimConfig::espFull(true)).run(*workload);
    const SimResult ref_b =
        Simulator(SimConfig::nextLineStride()).run(*workload);

    SimResult par_a, par_b;
    std::thread ta([&] {
        par_a = Simulator(SimConfig::espFull(true)).run(*workload);
    });
    std::thread tb([&] {
        par_b = Simulator(SimConfig::nextLineStride()).run(*workload);
    });
    ta.join();
    tb.join();

    EXPECT_EQ(par_a.cycles, ref_a.cycles);
    EXPECT_EQ(par_a.ipc, ref_a.ipc);
    EXPECT_EQ(par_b.cycles, ref_b.cycles);
    EXPECT_EQ(par_b.ipc, ref_b.ipc);
}

TEST(ParallelSweep, SharedLazyWorkloadConcurrentReplay)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 30;

    // Serial references from a private lazy workload.
    LazyWorkload ref_workload(p);
    const SimResult ref_a =
        Simulator(SimConfig::espFull(true)).run(ref_workload);
    const SimResult ref_b =
        Simulator(SimConfig::nextLineStride()).run(ref_workload);

    // Two simulators race over ONE lazy workload: the cache must not
    // let one thread's eviction invalidate the other's references.
    LazyWorkload shared(p);
    SimResult par_a, par_b;
    std::thread ta([&] {
        par_a = Simulator(SimConfig::espFull(true)).run(shared);
    });
    std::thread tb([&] {
        par_b = Simulator(SimConfig::nextLineStride()).run(shared);
    });
    ta.join();
    tb.join();

    EXPECT_EQ(par_a.cycles, ref_a.cycles);
    EXPECT_EQ(par_a.ipc, ref_a.ipc);
    EXPECT_EQ(par_b.cycles, ref_b.cycles);
    EXPECT_EQ(par_b.ipc, ref_b.ipc);
}

TEST(ParallelSweep, LazyCacheStaysBoundedUnderConcurrency)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 40;
    LazyWorkload shared(p, 6);

    auto scan = [&shared] {
        for (std::size_t i = 0; i < shared.numEvents(); ++i)
            (void)shared.event(i);
    };
    std::thread ta(scan);
    std::thread tb(scan);
    ta.join();
    tb.join();

    // Bounded by one window per reader thread plus the last caller's
    // live window — nowhere near the 40 events generated.
    EXPECT_LE(shared.residentTraces(), 3 * 6);
    EXPECT_GE(shared.generations(), shared.numEvents());
}

TEST(JobPool, ThrowingJobPropagatesFromWait)
{
    // A throwing job must not terminate the process, deadlock wait(),
    // or stop the other jobs from running.
    JobPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 32; ++i) {
        pool.submit([&count, i] {
            if (i == 7)
                throw std::runtime_error("job 7 exploded");
            ++count;
        });
    }
    bool threw = false;
    try {
        pool.wait();
    } catch (const std::runtime_error &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "job 7 exploded");
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(count.load(), 31);

    // The pool is clean and reusable after the rethrow.
    pool.submit([&count] { ++count; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(count.load(), 32);
}

TEST(JobPool, InlinePoolFollowsTheSameExceptionContract)
{
    JobPool pool(1);
    std::atomic<int> count{0};
    pool.submit([] { throw std::logic_error("inline boom"); });
    pool.submit([&count] { ++count; }); // still runs
    bool threw = false;
    try {
        pool.wait();
    } catch (const std::logic_error &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "inline boom");
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(count.load(), 1);
    EXPECT_NO_THROW(pool.wait());
}

TEST(JobPool, LaterExceptionsAreCountedNotLost)
{
    JobPool pool(1); // inline: deterministic job order
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::runtime_error("second"); });
    EXPECT_EQ(pool.droppedExceptions(), 1u);
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ParallelSweep, FaultInjectedCellDegradesToErrorCell)
{
    ::setenv("ESPSIM_FAULT_INJECT", "alpha:NL", 1);
    SuiteRunner runner(twoAppSuite());
    runner.setJobs(4);
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::nextLine()};
    const auto rows = runner.run(configs);
    ::unsetenv("ESPSIM_FAULT_INJECT");

    ASSERT_EQ(rows.size(), 2u);
    EXPECT_TRUE(suiteHasErrors(rows));

    // Only the targeted cell failed; it carries message + config hash.
    EXPECT_FALSE(rows[0].ok(1));
    EXPECT_NE(rows[0].errors[1].message.find("injected fault"),
              std::string::npos);
    EXPECT_EQ(rows[0].errors[1].configHash.size(), 16u);

    // Every other cell completed with a real result.
    EXPECT_TRUE(rows[0].ok(0));
    EXPECT_TRUE(rows[1].ok(0));
    EXPECT_TRUE(rows[1].ok(1));
    EXPECT_GT(rows[0].results[0].cycles, 0u);
    EXPECT_GT(rows[1].results[1].cycles, 0u);

    // Aggregates skip the failed cell instead of crashing on it.
    const double agg = hmeanImprovementPct(rows, 1, 0);
    EXPECT_TRUE(std::isfinite(agg));

    // The artifact grows an errors block naming the failed cell.
    ArtifactManifest manifest;
    manifest.source = "test";
    const std::string json =
        renderSuiteArtifactJson(manifest, configs, rows);
    EXPECT_NE(json.find("\"errors\""), std::string::npos);
    EXPECT_NE(json.find("injected fault"), std::string::npos);
}

TEST(ParallelSweep, CleanSweepEmitsNoErrorsBlock)
{
    SuiteRunner runner(twoAppSuite());
    runner.setJobs(2);
    const std::vector<SimConfig> configs{SimConfig::baseline()};
    const auto rows = runner.run(configs);
    EXPECT_FALSE(suiteHasErrors(rows));
    ArtifactManifest manifest;
    manifest.source = "test";
    const std::string json =
        renderSuiteArtifactJson(manifest, configs, rows);
    // Golden-baseline compatibility: clean artifacts carry no block.
    EXPECT_EQ(json.find("\"errors\""), std::string::npos);
}

TEST(ParallelSweep, WildcardFaultInjectionHitsEveryCell)
{
    ::setenv("ESPSIM_FAULT_INJECT", "*:*", 1);
    SuiteRunner runner(twoAppSuite());
    runner.setJobs(1); // inline path degrades identically
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::nextLine()};
    const auto rows = runner.run(configs);
    ::unsetenv("ESPSIM_FAULT_INJECT");
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            EXPECT_FALSE(row.ok(c)) << row.app << "," << c;
    }
}
