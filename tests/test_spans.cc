/**
 * @file
 * Tests for request-flow span tracing: the SpanCollector flight
 * recorder (ring wrap-around, worst-K ordering, one-shot anomaly
 * dump), the span closure invariant against a real simulated run
 * (Σ span buckets == retire - startCycle, consecutive spans tile the
 * run), determinism of the span artifact under concurrent replays,
 * the injected-spike end-to-end detector path, the per-handler
 * latency breakdown, and the zero-steady-state-allocation contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_counter.hh"
#include "common/job_pool.hh"
#include "cpu/ooo_core.hh"
#include "report/flight_recorder.hh"
#include "report/spans.hh"
#include "server/latency.hh"
#include "server/profile.hh"
#include "server/serve.hh"
#include "sim/simulator.hh"
#include "workload/streaming.hh"

using namespace espsim;

namespace
{

/** A synthetic span with the given latency, arriving back to back. */
RequestSpan
makeSpan(std::uint64_t index, Cycle total)
{
    RequestSpan span;
    span.index = index;
    span.handlerType = static_cast<std::uint32_t>(index % 3);
    span.startCycle = index * 1000;
    span.arrival = index * 1000;
    span.dispatch = index * 1000;
    span.retire = index * 1000 + total;
    span.instructions = total / 2;
    span.buckets[static_cast<std::size_t>(CycleBucket::Retiring)] =
        total;
    return span;
}

/** Feed @p n steady spans of latency @p total into @p collector. */
void
feedSteady(SpanCollector &collector, std::uint64_t n, Cycle total,
           std::uint64_t first_index = 0)
{
    for (std::uint64_t i = 0; i < n; ++i)
        collector.onSpan(makeSpan(first_index + i, total));
}

ServeOptions
spikedOptions()
{
    ServeOptions opts;
    opts.events = 400;
    opts.arrival.meanGapCycles = 2000.0;
    opts.spans.enabled = true;
    opts.spans.flightRecorder = 64;
    opts.spans.worstK = 8;
    opts.spans.anomalyThreshold = 4.0;
    opts.spans.anomalyMinSamples = 50;
    opts.spans.spikeEvent = 350;
    opts.spans.spikeScale = 40;
    return opts;
}

} // namespace

// --------------------------------------------------------------------
// SpanCollector: ring, worst-K, anomaly detector
// --------------------------------------------------------------------

TEST(SpanCollector, RingWrapsKeepingTheNewestSpans)
{
    SpanCollectorConfig cfg;
    cfg.ringCapacity = 8;
    SpanCollector collector(cfg);
    feedSteady(collector, 20, 500);

    EXPECT_EQ(collector.spansRecorded(), 20u);
    ASSERT_EQ(collector.ring().size(), 8u);
    // The ring holds exactly the last capacity spans, oldest first.
    for (std::size_t i = 0; i < collector.ring().size(); ++i)
        EXPECT_EQ(collector.ring().at(i).index, 12u + i);
}

TEST(SpanCollector, WorstSpansAreSortedAndBounded)
{
    SpanCollectorConfig cfg;
    cfg.worstK = 4;
    SpanCollector collector(cfg);
    // Latencies 100, 200, ..., 1200 in shuffled-ish order.
    const Cycle totals[] = {300, 1200, 100, 700, 500, 1100,
                            200, 900,  400, 600, 800, 1000};
    std::uint64_t index = 0;
    for (const Cycle t : totals)
        collector.onSpan(makeSpan(index++, t));

    const std::vector<RequestSpan> worst = collector.worstSpans();
    ASSERT_EQ(worst.size(), 4u);
    EXPECT_EQ(worst[0].totalCycles(), 1200u);
    EXPECT_EQ(worst[1].totalCycles(), 1100u);
    EXPECT_EQ(worst[2].totalCycles(), 1000u);
    EXPECT_EQ(worst[3].totalCycles(), 900u);
}

TEST(SpanCollector, AnomalyDetectorIsArmedOnlyAfterWarmup)
{
    SpanCollectorConfig cfg;
    cfg.anomalyMinSamples = 64;
    cfg.anomalyThreshold = 4.0;
    SpanCollector collector(cfg);

    // A huge span before the warmup threshold must not trigger.
    feedSteady(collector, 10, 500);
    collector.onSpan(makeSpan(10, 1'000'000));
    EXPECT_TRUE(collector.anomalies().empty());
    EXPECT_FALSE(collector.dumpTriggered());
}

TEST(SpanCollector, AnomalyDumpFiresExactlyOnce)
{
    SpanCollectorConfig cfg;
    cfg.anomalyMinSamples = 32;
    cfg.anomalyThreshold = 4.0;
    SpanCollector collector(cfg);

    int fired = 0;
    std::uint64_t fired_index = 0;
    collector.setAnomalyCallback(
        [&fired, &fired_index](const SpanCollector &c,
                               const RequestSpan &trigger) {
            ++fired;
            fired_index = trigger.index;
            // The trigger is the newest ring entry at callback time.
            ASSERT_GT(c.ring().size(), 0u);
            EXPECT_EQ(c.ring().at(c.ring().size() - 1).index,
                      trigger.index);
        });

    feedSteady(collector, 100, 500);
    collector.onSpan(makeSpan(100, 50'000));
    collector.onSpan(makeSpan(101, 60'000)); // second anomaly
    feedSteady(collector, 20, 500, 102);

    EXPECT_EQ(fired, 1);
    EXPECT_EQ(fired_index, 100u);
    EXPECT_TRUE(collector.dumpTriggered());
    EXPECT_EQ(collector.dumpEvent(), 100u);
    // Both anomalies are recorded even though the dump is one-shot.
    ASSERT_EQ(collector.anomalies().size(), 2u);
    EXPECT_EQ(collector.anomalies()[0].span.index, 100u);
    EXPECT_EQ(collector.anomalies()[1].span.index, 101u);
}

TEST(SpanCollector, SteadyStateRecordsWithoutAllocating)
{
    if (!allocCounterActive())
        GTEST_SKIP() << "build without ESPSIM_ALLOC_COUNTER";

    SpanCollectorConfig cfg;
    cfg.ringCapacity = 64;
    cfg.worstK = 8;
    cfg.anomalyMinSamples = 16;
    SpanCollector collector(cfg);

    // Warm the detector, then measure a long steady stream that
    // exercises ring wrap, worst-K replacement, and anomaly recording.
    feedSteady(collector, 32, 500);
    const std::uint64_t before = allocCount();
    for (std::uint64_t i = 0; i < 10'000; ++i)
        collector.onSpan(makeSpan(32 + i, 400 + i % 300));
    collector.onSpan(makeSpan(20'000, 1'000'000)); // bounded record
    EXPECT_EQ(allocCount(), before);
}

// --------------------------------------------------------------------
// Span capture against a real run
// --------------------------------------------------------------------

TEST(SpanCapture, SpansTileTheRunAndBucketsClose)
{
    ServerProfile p = ServerProfile::testProfile();
    p.app.numEvents = 120;
    StreamingWorkload workload(
        std::make_unique<ServerTraceSource>(p));
    ArrivalConfig acfg;
    acfg.meanGapCycles = 3000.0;
    ServePacer pacer(makeArrivalProcess(acfg), 1024, acfg.seed,
                     p.app.numHandlerTypes);

    SpanCollectorConfig scfg;
    scfg.ringCapacity = 256; // > numEvents: every span survives
    SpanCollector collector(scfg);

    RunInstrumentation inst;
    inst.pacer = &pacer;
    inst.spans = &collector;
    const SimResult r =
        Simulator(SimConfig::espFull(true)).run(workload, inst);

    ASSERT_EQ(collector.spansRecorded(), p.app.numEvents);
    ASSERT_EQ(collector.ring().size(), p.app.numEvents);

    Cycle prev_retire = 0;
    Cycle span_cycle_sum = 0;
    for (std::size_t i = 0; i < collector.ring().size(); ++i) {
        const RequestSpan &span = collector.ring().at(i);
        // Spans tile the run: each window opens where the previous
        // one closed (the first opens at cycle 0).
        EXPECT_EQ(span.startCycle, prev_retire);
        prev_retire = span.retire;
        // Closure: the captured bucket deltas account for every
        // cycle of the span window, exactly.
        EXPECT_EQ(span.bucketSum(), span.spanCycles());
        EXPECT_EQ(span.queueCycles() + span.serviceCycles(),
                  span.totalCycles());
        EXPECT_GE(span.retire, span.dispatch);
        span_cycle_sum += span.spanCycles();
    }
    // The tiled spans cover the whole run up to the last retirement.
    EXPECT_EQ(span_cycle_sum, prev_retire);
    EXPECT_LE(prev_retire, r.cycles);
    // ESP ran, so some span must carry pre-exec blame.
    Cycle pre_exec = 0;
    for (std::size_t i = 0; i < collector.ring().size(); ++i)
        pre_exec += collector.ring().at(i).espPreExecCycles();
    EXPECT_EQ(pre_exec,
              r.core.bucketCycles[static_cast<std::size_t>(
                  CycleBucket::EspPreExec)]);
}

TEST(SpanCapture, SpanArtifactIsDeterministicAcrossConcurrency)
{
    const ServerProfile profile = ServerProfile::testProfile();
    const std::vector<SimConfig> configs{SimConfig::baseline()};
    const ServeOptions opts = spikedOptions();

    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "test";
    manifest.buildType = "test";

    const std::string serial = renderSpanArtifactJson(
        manifest, runServe(profile, configs, opts));

    // Four concurrent replays of the identical run must each render
    // byte-for-byte the same artifact as the serial one.
    std::vector<std::string> parallel(4);
    {
        JobPool pool(4);
        for (std::string &out : parallel) {
            pool.submit([&] {
                out = renderSpanArtifactJson(
                    manifest, runServe(profile, configs, opts));
            });
        }
        pool.wait();
    }
    for (const std::string &artifact : parallel)
        EXPECT_EQ(artifact, serial);
    EXPECT_NE(serial.find("\"schema\":\"espsim-span-artifact\""),
              std::string::npos);
}

TEST(SpanCapture, InjectedSpikeTriggersExactlyOneDump)
{
    const ServeReport report = runServe(
        ServerProfile::testProfile(), {SimConfig::baseline()},
        spikedOptions());
    ASSERT_EQ(report.cells.size(), 1u);
    const ServeCell &cell = report.cells[0];

    EXPECT_TRUE(cell.dumpTriggered);
    EXPECT_EQ(cell.dumpEvent, 350u);
    ASSERT_FALSE(cell.anomalies.empty());
    EXPECT_EQ(cell.anomalies[0].span.index, 350u);
    // The spiked request (or a victim queued right behind it — the
    // backlog can out-wait the spike itself) tops the worst-K table,
    // and the spike itself is in it.
    ASSERT_FALSE(cell.worstSpans.empty());
    EXPECT_GE(cell.worstSpans[0].index, 350u);
    bool spike_listed = false;
    for (const RequestSpan &span : cell.worstSpans)
        spike_listed = spike_listed || span.index == 350;
    EXPECT_TRUE(spike_listed);
    EXPECT_EQ(cell.spansRecorded, 400u);

    // The flight-recorder trace replays the ring into a renderable
    // Chrome trace tagged with its kind.
    SpanCollectorConfig scfg;
    SpanCollector collector(scfg);
    for (const RequestSpan &span : cell.worstSpans)
        collector.onSpan(span);
    const std::string trace =
        renderFlightRecorderTrace(collector, "base", "testsrv");
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"trace_kind\":\"flight-recorder\""),
              std::string::npos);
}

TEST(SpanCapture, QuietRunTriggersNoDump)
{
    ServeOptions opts = spikedOptions();
    opts.spans.spikeEvent = noSpikeEvent; // no injected spike
    const ServeReport report = runServe(
        ServerProfile::testProfile(), {SimConfig::baseline()}, opts);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_FALSE(report.cells[0].dumpTriggered);
}

// --------------------------------------------------------------------
// Per-handler latency breakdown
// --------------------------------------------------------------------

TEST(HandlerBreakdown, RowsPartitionTheEventStream)
{
    ServeOptions opts;
    opts.events = 300;
    opts.arrival.meanGapCycles = 2000.0;
    const ServeReport report = runServe(
        ServerProfile::testProfile(), {SimConfig::baseline()}, opts);
    ASSERT_EQ(report.cells.size(), 1u);
    const ServeCell &cell = report.cells[0];

    ASSERT_FALSE(cell.handlers.empty());
    std::uint64_t handler_events = 0;
    for (const HandlerLatencyRow &row : cell.handlers) {
        EXPECT_GT(row.events, 0u);
        EXPECT_EQ(row.queue.count, row.events);
        EXPECT_EQ(row.service.count, row.events);
        EXPECT_LE(row.queue.p50, row.queue.p99);
        EXPECT_LE(row.service.p50, row.service.p99);
        handler_events += row.events;
    }
    EXPECT_EQ(handler_events, cell.events);
}

TEST(HandlerBreakdown, StatsSurfaceInTheRegistrySnapshot)
{
    ServerProfile p = ServerProfile::testProfile();
    p.app.numEvents = 200;
    StreamingWorkload workload(
        std::make_unique<ServerTraceSource>(p));
    ArrivalConfig acfg;
    ServePacer pacer(makeArrivalProcess(acfg), 1024, acfg.seed,
                     p.app.numHandlerTypes);
    RunInstrumentation inst;
    inst.pacer = &pacer;
    const SimResult r =
        Simulator(SimConfig::baseline()).run(workload, inst);

    ASSERT_TRUE(r.stats.has("server.handler.0.events"));
    ASSERT_TRUE(r.stats.has("server.handler.0.queue.p50"));
    ASSERT_TRUE(r.stats.has("server.handler.0.queue.p99"));
    ASSERT_TRUE(r.stats.has("server.handler.0.service.p50"));
    ASSERT_TRUE(r.stats.has("server.handler.0.service.p99"));
    EXPECT_LE(r.stats.get("server.handler.0.queue.p50"),
              r.stats.get("server.handler.0.queue.p99"));
    // The rows partition the stream across the profile's handlers.
    double total = 0.0;
    for (std::size_t h = 0; h < p.app.numHandlerTypes; ++h) {
        const std::string key =
            "server.handler." + std::to_string(h) + ".events";
        if (r.stats.has(key))
            total += r.stats.get(key);
    }
    EXPECT_EQ(total, static_cast<double>(p.app.numEvents));
}
