/**
 * @file
 * Tests for the runahead execution engine: trigger conditions, data
 * cache warming, INV-bit dependence tracking, wrong-path and I-miss
 * stops, branch-context checkpointing, and episode deduplication.
 */

#include <gtest/gtest.h>

#include "cpu/runahead.hh"
#include "workload/builder.hh"

using namespace espsim;

namespace
{

struct Rig
{
    std::unique_ptr<InMemoryWorkload> w;
    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    RunaheadConfig cfg;

    explicit Rig(std::unique_ptr<InMemoryWorkload> workload)
        : w(std::move(workload))
    {
    }

    RunaheadEngine
    engine()
    {
        return RunaheadEngine(cfg, mem, bp, *w, 4);
    }

    /** Warm the event's code into the caches (the current event is
     *  executing, so its code path has been fetched). */
    void
    warmCode(std::size_t event_idx = 0)
    {
        mem.setStatCounting(false);
        for (const MicroOp &op : w->event(event_idx).ops)
            mem.accessInstr(op.pc, 0);
        mem.setStatCounting(true);
    }

    StallContext
    dataStall(std::size_t trigger_op, std::uint8_t dest = noReg,
              Cycle idle = 120)
    {
        StallContext ctx;
        ctx.kind = StallKind::DataLlcMiss;
        ctx.idleCycles = idle;
        ctx.triggerOpIdx = trigger_op;
        ctx.missDest = dest;
        return ctx;
    }
};

std::unique_ptr<InMemoryWorkload>
loadHeavyEvent()
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1); // the "missing" load
    for (int i = 0; i < 20; ++i)
        b.load(0x1004 + 4 * i, 0x9000000 + i * 4096,
               static_cast<std::uint8_t>(2 + i % 8));
    return b.build("loads");
}

} // namespace

TEST(Runahead, IgnoresInstructionSideStalls)
{
    Rig rig(loadHeavyEvent());
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    StallContext ctx;
    ctx.kind = StallKind::InstrLlcMiss;
    ctx.idleCycles = 200;
    engine.onStall(ctx);
    EXPECT_EQ(engine.stats().entries, 0u);
    EXPECT_EQ(engine.stats().instructions, 0u);
}

TEST(Runahead, WarmsDataCacheAlongFuturePath)
{
    Rig rig(loadHeavyEvent());
    auto engine = rig.engine();
    rig.warmCode();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, 1, 400));
    EXPECT_EQ(engine.stats().entries, 1u);
    EXPECT_GT(engine.stats().instructions, 0u);
    // Future load addresses should now be resident in the hierarchy
    // (possibly only in L2 if later warms conflict-evicted them).
    EXPECT_NE(rig.mem.probeData(0x9000000).level, HitLevel::Memory);
}

TEST(Runahead, InvalidDestBlocksDependentLoads)
{
    // Load into r1 misses; a dependent load uses r1 as address base —
    // runahead must not prefetch it (address unknown).
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1);
    MicroOp dep;
    dep.pc = 0x1004;
    dep.setType(OpType::Load);
    dep.memAddr = 0x9000000;
    dep.srcA = 1; // depends on the missing load
    dep.dest = 2;
    b.op(dep);
    MicroOp indep;
    indep.pc = 0x1008;
    indep.setType(OpType::Load);
    indep.memAddr = 0xa000000;
    indep.srcA = 7;
    indep.dest = 3;
    b.op(indep);
    Rig rig(b.build("dep"));
    rig.warmCode();
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(1, 1, 400));
    EXPECT_GE(engine.stats().invalidOps, 1u);
    // The dependent load's block was not fetched...
    EXPECT_NE(rig.mem.probeData(0x9000000).level, HitLevel::L1);
    // ...but the independent one was.
    EXPECT_EQ(rig.mem.probeData(0xa000000).level, HitLevel::L1);
}

TEST(Runahead, StopsAtInstructionLlcMiss)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.aluBlock(0x1000, 4);
    b.alu(0x5000000); // far-away cold block: LLC I-miss in runahead
    b.load(0x5000004, 0x9000000, 2);
    Rig rig(b.build("imiss"));
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, noReg, 2000));
    EXPECT_EQ(engine.stats().stoppedOnInstrMiss, 1u);
    EXPECT_NE(rig.mem.probeData(0x9000000).level, HitLevel::L1);
}

TEST(Runahead, StopsOnWrongPathWhenInvalidBranchMispredicted)
{
    // A cold conditional branch depending on the missing load: the
    // (cold) prediction is not-taken, the actual direction is taken,
    // so runahead diverges and must stop.
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1);
    MicroOp br;
    br.pc = 0x1004;
    br.setType(OpType::BranchCond);
    br.setTaken(true);
    br.setBranchTarget(0x2000);
    br.srcA = 1;
    b.op(br);
    b.load(0x2000, 0x9000000, 2);
    Rig rig(b.build("wrongpath"));
    rig.warmCode();
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(1, 1, 2000));
    EXPECT_EQ(engine.stats().stoppedOnWrongPath, 1u);
    EXPECT_NE(rig.mem.probeData(0x9000000).level, HitLevel::L1);
}

TEST(Runahead, BranchContextRestoredAfterEpisode)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.call(0x1000, 0x2000);
    b.aluBlock(0x2000, 4);
    Rig rig(b.build("calls"));
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    const auto pir_before = rig.bp.context().pir.value();
    const auto ras_before = rig.bp.context().ras.size();
    engine.onStall(rig.dataStall(0, noReg, 400));
    EXPECT_EQ(rig.bp.context().pir.value(), pir_before);
    EXPECT_EQ(rig.bp.context().ras.size(), ras_before);
}

TEST(Runahead, EpisodesDeduplicateCoveredGround)
{
    Rig rig(loadHeavyEvent());
    rig.warmCode();
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, noReg, 4000));
    const auto instrs_first = engine.stats().instructions;
    // A second stall at the same trigger must not re-walk everything.
    engine.onStall(rig.dataStall(0, noReg, 4000));
    EXPECT_EQ(engine.stats().instructions, instrs_first);
}

TEST(Runahead, CoverageResetsOnNewEvent)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1);
    b.load(0x1004, 0x9000000, 2);
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1);
    b.load(0x1004, 0x9000000, 2);
    Rig rig(b.build("twice"));
    rig.warmCode(0);
    rig.warmCode(1);
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, noReg, 400));
    const auto n1 = engine.stats().instructions;
    EXPECT_GT(n1, 0u);
    engine.onEventStart(1, 100);
    engine.onStall(rig.dataStall(0, noReg, 400));
    EXPECT_GT(engine.stats().instructions, n1);
}

TEST(Runahead, DataOnlyVariantDoesNotTrainPredictor)
{
    WorkloadBuilder b;
    b.beginEvent(0x1000);
    b.load(0x1000, 0x8000000, 1);
    for (int i = 0; i < 10; ++i)
        b.branch(0x1004 + 8 * i, true, 0x1008 + 8 * i);
    Rig rig(b.build("branches"));
    rig.cfg.trainBranchPredictor = false;
    rig.cfg.warmInstr = false;
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, noReg, 2000));
    // The predictor saw nothing: a cold taken branch still mispredicts.
    MicroOp br;
    br.pc = 0x1004;
    br.setType(OpType::BranchCond);
    br.setTaken(true);
    br.setBranchTarget(0x100c);
    EXPECT_EQ(rig.bp.executeBranch(br), BranchResult::Mispredict);
}

TEST(Runahead, StatsAreGatedDuringEpisodes)
{
    Rig rig(loadHeavyEvent());
    rig.warmCode();
    auto engine = rig.engine();
    engine.onEventStart(0, 0);
    engine.onStall(rig.dataStall(0, noReg, 1000));
    // Demand-side counters must not include runahead traffic.
    EXPECT_EQ(rig.mem.l1dAccesses(), 0u);
    EXPECT_EQ(rig.mem.l1iAccesses(), 0u);
}
