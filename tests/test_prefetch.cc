/**
 * @file
 * Unit tests for the baseline prefetchers: next-line instruction,
 * DCU-style next-line data (4-consecutive trigger), and the 256-entry
 * stride prefetcher.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "prefetch/next_line.hh"
#include "prefetch/stride.hh"

using namespace espsim;

namespace
{

HierarchyConfig
smallConfig()
{
    HierarchyConfig c;
    c.l1i = {"L1-I", 1024, 2, 2};
    c.l1d = {"L1-D", 1024, 2, 2};
    c.l2 = {"L2", 16 * 1024, 4, 21};
    return c;
}

} // namespace

TEST(NextLineInstr, PrefetchesFollowingBlock)
{
    MemoryHierarchy mem(smallConfig());
    NextLineInstrPrefetcher nl;
    mem.accessInstr(0x1000, 0);
    nl.notifyAccess(mem, 0x1000, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
    // 0x1040 (next block) should now be present.
    EXPECT_EQ(mem.accessInstr(0x1040, 10'000).level, HitLevel::L1);
}

TEST(NextLineInstr, NoDuplicateOnSameBlock)
{
    MemoryHierarchy mem(smallConfig());
    NextLineInstrPrefetcher nl;
    nl.notifyAccess(mem, 0x1000, 0);
    nl.notifyAccess(mem, 0x1004, 0); // same block: filtered
    nl.notifyAccess(mem, 0x1038, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
}

TEST(NextLineInstr, DegreeTwoPrefetchesTwoBlocks)
{
    MemoryHierarchy mem(smallConfig());
    NextLineInstrPrefetcher nl(2);
    nl.notifyAccess(mem, 0x1000, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 2u);
    EXPECT_EQ(mem.accessInstr(0x1080, 10'000).level, HitLevel::L1);
}

TEST(Dcu, RequiresFourConsecutiveAccesses)
{
    MemoryHierarchy mem(smallConfig());
    DcuPrefetcher dcu(4);
    for (int i = 0; i < 3; ++i)
        dcu.notifyAccess(mem, 0x2000 + 8 * i, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
    dcu.notifyAccess(mem, 0x2018, 0); // 4th access to the same line
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
    EXPECT_EQ(mem.accessData(0x2040, false, 10'000).level, HitLevel::L1);
}

TEST(Dcu, CounterResetsOnLineChange)
{
    MemoryHierarchy mem(smallConfig());
    DcuPrefetcher dcu(4);
    dcu.notifyAccess(mem, 0x2000, 0);
    dcu.notifyAccess(mem, 0x2008, 0);
    dcu.notifyAccess(mem, 0x3000, 0); // different line: reset
    dcu.notifyAccess(mem, 0x2000, 0);
    dcu.notifyAccess(mem, 0x2008, 0);
    dcu.notifyAccess(mem, 0x2010, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
}

TEST(Stride, DetectsConstantStride)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256);
    const Addr pc = 0x1000;
    // Stride of 256 bytes: needs a few observations to gain confidence.
    for (int i = 0; i < 4; ++i)
        sp.notifyAccess(mem, pc, 0x10000 + 256 * i, 0);
    EXPECT_GE(sp.confidentEntries(), 1u);
    EXPECT_GT(mem.prefetchesIssued(), 0u);
    // The predicted next address should be resident.
    EXPECT_EQ(mem.accessData(0x10000 + 256 * 4, false, 10'000).level,
              HitLevel::L1);
}

TEST(Stride, IgnoresRandomPattern)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256);
    const Addr addrs[] = {0x1000, 0x9438, 0x2210, 0x7fff8, 0x330};
    for (Addr a : addrs)
        sp.notifyAccess(mem, 0x1000, a, 0);
    EXPECT_EQ(sp.confidentEntries(), 0u);
}

TEST(Stride, ZeroStrideDoesNotPrefetch)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256);
    for (int i = 0; i < 8; ++i)
        sp.notifyAccess(mem, 0x1000, 0x5000, 0);
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
}

TEST(Stride, DistinctPcsTrackedIndependently)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256);
    // PCs chosen to land in different table slots.
    for (int i = 0; i < 4; ++i) {
        sp.notifyAccess(mem, 0x1000, 0x10000 + 64 * i, 0);
        sp.notifyAccess(mem, 0x1010, 0x80000 + 128 * i, 0);
    }
    EXPECT_GE(sp.confidentEntries(), 2u);
}

TEST(Stride, TagMismatchReallocates)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(4); // tiny table to force aliasing
    // Two PCs 4 entries apart alias to the same slot with different
    // tags; the second allocation replaces the first.
    for (int i = 0; i < 4; ++i)
        sp.notifyAccess(mem, 0x1000, 0x10000 + 64 * i, 0);
    const auto confident_before = sp.confidentEntries();
    sp.notifyAccess(mem, 0x1000 + 4 * 4 * 4, 0x90000, 0);
    EXPECT_LE(sp.confidentEntries(), confident_before);
}

TEST(Stride, DownCountingStreamNearZeroCountsDroppedWraps)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256, 2); // degree 2 reaches past the wrap
    const Addr pc = 0x1000;
    // Descending 256 B stride starting 1 KB above address zero: once
    // confident, the deeper prefetch target wraps below zero. The old
    // signed arithmetic silently dropped these; now they are counted.
    for (int i = 0; i < 4; ++i)
        sp.notifyAccess(mem, pc, 0x400 - 256 * i, 0);
    EXPECT_GE(sp.confidentEntries(), 1u);
    EXPECT_GT(sp.droppedWraps(), 0u);
}

TEST(Stride, UpCountingStreamNearTopOfAddressSpaceWraps)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256, 2);
    const Addr pc = 0x2000;
    const Addr top = ~Addr{0} - 0x3ff; // 1 KB below the top
    for (int i = 0; i < 4; ++i)
        sp.notifyAccess(mem, pc, top + 256 * i, 0);
    EXPECT_GE(sp.confidentEntries(), 1u);
    EXPECT_GT(sp.droppedWraps(), 0u);
}

TEST(Stride, OrdinaryStreamsNeverCountWraps)
{
    MemoryHierarchy mem(smallConfig());
    StridePrefetcher sp(256, 2);
    for (int i = 0; i < 16; ++i)
        sp.notifyAccess(mem, 0x1000, 0x10000 + 256 * i, 0);
    for (int i = 0; i < 16; ++i)
        sp.notifyAccess(mem, 0x1010, 0x80000 - 256 * i, 0);
    EXPECT_GT(mem.prefetchesIssued(), 0u);
    EXPECT_EQ(sp.droppedWraps(), 0u);
}
