/**
 * @file
 * Tests for the server subsystem: arrival-process statistics
 * (exponential inter-arrivals, MMPP burstiness, closed-loop feedback),
 * Zipfian key popularity, request-mix fractions, the reservoir-backed
 * SampleStat, and the end-to-end serve path (deterministic latency
 * artifacts, Idle-bucket cycle closure).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "cpu/ooo_core.hh"
#include "server/arrival.hh"
#include "server/latency.hh"
#include "server/profile.hh"
#include "server/serve.hh"
#include "sim/simulator.hh"
#include "workload/streaming.hh"

using namespace espsim;

namespace
{

/** Inter-arrival gaps of the first @p n events of @p proc. */
std::vector<double>
gapsOf(ArrivalProcess &proc, std::size_t n)
{
    std::vector<double> gaps;
    gaps.reserve(n);
    Cycle prev = proc.arrivalCycle(0);
    for (std::size_t i = 1; i <= n; ++i) {
        const Cycle t = proc.arrivalCycle(i);
        EXPECT_GE(t, prev) << "arrivals must be non-decreasing";
        gaps.push_back(static_cast<double>(t - prev));
        prev = t;
    }
    return gaps;
}

double
meanOf(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0) /
        static_cast<double>(v.size());
}

} // namespace

// --------------------------------------------------------------------
// Arrival processes
// --------------------------------------------------------------------

TEST(Arrival, PoissonGapsAreExponential)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.meanGapCycles = 3000.0;
    const auto proc = makeArrivalProcess(cfg);
    const std::vector<double> gaps = gapsOf(*proc, 20'000);

    // Sample mean within 3% of the configured mean.
    EXPECT_NEAR(meanOf(gaps), cfg.meanGapCycles,
                0.03 * cfg.meanGapCycles);

    // Chi-square over 10 equal-probability exponential buckets. With
    // df = 9 a statistic of 35 is a ~5e-5 tail — loose enough to
    // never flake on a fixed seed, tight enough to catch a uniform or
    // half-mean generator instantly.
    constexpr int kBuckets = 10;
    double bounds[kBuckets]; // upper bounds; last = +inf
    for (int k = 1; k < kBuckets; ++k)
        bounds[k - 1] = -cfg.meanGapCycles *
            std::log(1.0 - static_cast<double>(k) / kBuckets);
    bounds[kBuckets - 1] = 1e300;
    double observed[kBuckets] = {};
    for (const double g : gaps) {
        int b = 0;
        while (g >= bounds[b])
            ++b;
        observed[b] += 1.0;
    }
    const double expected =
        static_cast<double>(gaps.size()) / kBuckets;
    double chi2 = 0.0;
    for (const double o : observed)
        chi2 += (o - expected) * (o - expected) / expected;
    EXPECT_LT(chi2, 35.0);
}

TEST(Arrival, BurstyMeanLandsBetweenBurstAndCalmRates)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.meanGapCycles = 2000.0;
    const auto proc = makeArrivalProcess(cfg);
    const std::vector<double> gaps = gapsOf(*proc, 20'000);
    const double mean = meanOf(gaps);
    // An MMPP's long-run mean gap sits strictly between the two
    // states' gaps; hitting either bound means a state is never
    // visited (or the modulation is broken).
    EXPECT_GT(mean, cfg.burstGapFactor * cfg.meanGapCycles);
    EXPECT_LT(mean, cfg.calmGapFactor * cfg.meanGapCycles);
}

TEST(Arrival, ClosedLoopIssuesThinkTimeAfterRetire)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::ClosedLoop;
    cfg.concurrency = 3;
    cfg.thinkCycles = 500;
    const auto proc = makeArrivalProcess(cfg);

    // Service time far above the initial stagger (<= thinkCycles), so
    // the first C arrivals consume the staggered starts and every
    // later arrival i is exactly retire(i - C) + think.
    constexpr Cycle kService = 10'000;
    std::vector<Cycle> arrivals, retires;
    for (std::size_t i = 0; i < 40; ++i) {
        const Cycle a = proc->arrivalCycle(i);
        if (i >= cfg.concurrency) {
            EXPECT_EQ(a,
                      retires[i - cfg.concurrency] + cfg.thinkCycles)
                << "event " << i;
        } else {
            EXPECT_LE(a, cfg.thinkCycles) << "staggered start";
        }
        const Cycle start = arrivals.empty()
            ? a
            : std::max(a, retires.back());
        arrivals.push_back(a);
        retires.push_back(start + kService);
        proc->onEventRetired(i, retires.back());
    }
}

TEST(Arrival, SameSeedSameSchedule)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    const auto a = makeArrivalProcess(cfg);
    const auto b = makeArrivalProcess(cfg);
    for (std::size_t i = 0; i < 500; ++i)
        ASSERT_EQ(a->arrivalCycle(i), b->arrivalCycle(i)) << i;
}

TEST(Arrival, KindNamesRoundTrip)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::ClosedLoop}) {
        ArrivalKind parsed;
        ASSERT_TRUE(parseArrivalKind(arrivalKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    ArrivalKind out;
    EXPECT_FALSE(parseArrivalKind("uniform", out));
}

// --------------------------------------------------------------------
// Zipf popularity and the request mix
// --------------------------------------------------------------------

TEST(ServerProfile, ZipfFrequenciesMatchTheLaw)
{
    constexpr std::uint64_t kN = 512;
    constexpr double kSkew = 0.99;
    constexpr std::size_t kDraws = 50'000;
    ZipfSampler zipf(kN, kSkew);
    ASSERT_EQ(zipf.size(), kN);

    std::vector<double> counts(kN, 0.0);
    Rng rng(0x21bf);
    for (std::size_t i = 0; i < kDraws; ++i)
        counts[zipf.draw(rng.real())] += 1.0;

    double h = 0.0;
    for (std::uint64_t k = 0; k < kN; ++k)
        h += 1.0 / std::pow(static_cast<double>(k + 1), kSkew);

    // Chi-square over the top 20 ranks plus one pooled tail cell
    // (df = 20; 45 is a ~1e-3 tail on a fixed seed).
    double chi2 = 0.0;
    double tail_obs = static_cast<double>(kDraws);
    double tail_exp = static_cast<double>(kDraws);
    for (std::uint64_t k = 0; k < 20; ++k) {
        const double e = kDraws /
            (std::pow(static_cast<double>(k + 1), kSkew) * h);
        chi2 += (counts[k] - e) * (counts[k] - e) / e;
        tail_obs -= counts[k];
        tail_exp -= e;
    }
    chi2 += (tail_obs - tail_exp) * (tail_obs - tail_exp) / tail_exp;
    EXPECT_LT(chi2, 45.0);
    // Rank 0 must dominate: the hot head is the whole point.
    EXPECT_GT(counts[0], counts[20] * 5);
}

TEST(ServerProfile, RequestMixMatchesConfiguredFractions)
{
    const ServerProfile p = ServerProfile::testProfile();
    const ServerTraceSource source(p);
    constexpr std::size_t kProbe = 20'000;
    double frac[3] = {};
    for (std::size_t id = 0; id < kProbe; ++id) {
        const RequestInfo r = source.requestFor(id);
        ASSERT_LT(static_cast<unsigned>(r.kind), 3u);
        frac[static_cast<unsigned>(r.kind)] += 1.0 / kProbe;
        EXPECT_LT(r.key, p.numKeys);
        EXPECT_GE(r.targetLen, p.app.minEventLen);
    }
    EXPECT_NEAR(frac[0], p.getFrac, 0.02);
    EXPECT_NEAR(frac[1], p.setFrac, 0.02);
    EXPECT_NEAR(frac[2], p.delFrac, 0.02);
}

TEST(ServerProfile, RouterModeUsesRouteHandlers)
{
    const ServerProfile p = ServerProfile::httpRouter();
    ASSERT_GT(p.numRoutes, 0u);
    ASSERT_EQ(p.numRoutes, p.app.numHandlerTypes);
    const ServerTraceSource source(p);
    for (std::size_t id = 0; id < 200; ++id) {
        const RequestInfo r = source.requestFor(id);
        EXPECT_EQ(r.kind, RequestKind::Route);
        EXPECT_LT(r.key, p.numRoutes);
    }
}

TEST(ServerProfile, TracesRegenerateBitIdentically)
{
    const ServerProfile p = ServerProfile::testProfile();
    const ServerTraceSource a(p);
    const ServerTraceSource b(p);
    for (const std::uint64_t id : {0u, 7u, 63u, 200u}) {
        const EventTrace ta = a.makeEvent(id);
        const EventTrace tb = b.makeEvent(id);
        ASSERT_EQ(ta.size(), tb.size()) << id;
        for (std::size_t k = 0; k < ta.size(); ++k) {
            ASSERT_EQ(ta.ops[k].pc, tb.ops[k].pc);
            ASSERT_EQ(ta.ops[k].memAddr, tb.ops[k].memAddr);
        }
    }
}

TEST(ServerProfile, ByNameFindsEveryPublishedProfile)
{
    for (const ServerProfile &p : ServerProfile::all())
        EXPECT_EQ(ServerProfile::byName(p.name).name, p.name);
    EXPECT_EQ(ServerProfile::byName("testsrv").name, "testsrv");
}

// --------------------------------------------------------------------
// Reservoir-backed SampleStat
// --------------------------------------------------------------------

TEST(Reservoir, ExactWhileUnderCapacity)
{
    SampleStat buffered;
    SampleStat reservoir;
    reservoir.enableReservoir(1024, 0x5eed);
    Rng rng(0x77);
    for (int i = 0; i < 500; ++i) {
        const double s = 100.0 * rng.real();
        buffered.record(s);
        reservoir.record(s);
    }
    // Below capacity the reservoir holds every sample: all statistics
    // are exactly the buffered ones.
    EXPECT_EQ(reservoir.count(), buffered.count());
    EXPECT_DOUBLE_EQ(reservoir.mean(), buffered.mean());
    EXPECT_DOUBLE_EQ(reservoir.max(), buffered.max());
    for (const double q : {50.0, 95.0, 99.0, 99.9}) {
        EXPECT_DOUBLE_EQ(reservoir.percentile(q),
                         buffered.percentile(q));
    }
}

TEST(Reservoir, CappedStreamIsDeterministicAndAccurate)
{
    SampleStat a, b;
    a.enableReservoir(256, 0x1234);
    b.enableReservoir(256, 0x1234);
    Rng rng(0x99);
    double true_max = 0.0;
    for (int i = 0; i < 20'000; ++i) {
        const double s = -1000.0 * std::log(1.0 - rng.real());
        true_max = std::max(true_max, s);
        a.record(s);
        b.record(s);
    }
    EXPECT_EQ(a.count(), 20'000u);
    EXPECT_DOUBLE_EQ(a.percentile(95.0), b.percentile(95.0));
    EXPECT_DOUBLE_EQ(a.percentile(99.0), b.percentile(99.0));
    // Running max/mean are exact regardless of sampling.
    EXPECT_DOUBLE_EQ(a.max(), true_max);
    EXPECT_NEAR(a.mean(), 1000.0, 30.0);
    // Sampled p50 of Exp(1000) ≈ 693; a reservoir of 256 should land
    // within a generous band.
    EXPECT_NEAR(a.percentile(50.0), 693.0, 150.0);
}

TEST(ReservoirDeathTest, MisuseIsFatal)
{
    SampleStat late;
    late.record(1.0);
    EXPECT_DEATH(late.enableReservoir(16, 1), "after 1 samples");
    SampleStat zero;
    EXPECT_DEATH(zero.enableReservoir(0, 1), "capacity");
}

// --------------------------------------------------------------------
// End-to-end serve path
// --------------------------------------------------------------------

namespace
{

ServeReport
tinyServe()
{
    ServeOptions opts;
    opts.events = 200;
    opts.arrival.meanGapCycles = 2000.0;
    return runServe(ServerProfile::testProfile(),
                    {SimConfig::baseline(), SimConfig::espFull(true)},
                    opts);
}

} // namespace

TEST(Serve, LatencyArtifactIsDeterministic)
{
    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "test";
    manifest.buildType = "test";
    const std::string a =
        renderLatencyArtifactJson(manifest, tinyServe());
    const std::string b =
        renderLatencyArtifactJson(manifest, tinyServe());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\":\"espsim-latency-artifact\""),
              std::string::npos);
}

TEST(Serve, LatencySummariesAreInternallyConsistent)
{
    const ServeReport report = tinyServe();
    ASSERT_EQ(report.cells.size(), 2u);
    for (const ServeCell &cell : report.cells) {
        EXPECT_EQ(cell.events, report.events);
        for (const LatencySummary *s :
             {&cell.queue, &cell.service, &cell.total}) {
            EXPECT_EQ(s->count, cell.events);
            EXPECT_LE(s->p50, s->p95);
            EXPECT_LE(s->p95, s->p99);
            EXPECT_LE(s->p99, s->p999);
            EXPECT_LE(s->p999, s->max);
        }
        // queue + service = total holds per sample, so it holds for
        // the (unsampled, exact) means.
        EXPECT_NEAR(cell.queue.mean + cell.service.mean,
                    cell.total.mean,
                    1e-9 * std::max(1.0, cell.total.mean));
        std::uint64_t hist_sum = 0;
        for (const std::uint64_t c : cell.histogram)
            hist_sum += c;
        EXPECT_EQ(hist_sum, cell.events);
    }
}

TEST(Serve, IdleCyclesCloseTheBucketAccounting)
{
    // A sparse arrival stream forces genuine idling; the core's own
    // Σ buckets == cycles panic (exercised by running at all) plus a
    // positive Idle count proves the new bucket integrates cleanly.
    ServerProfile p = ServerProfile::testProfile();
    p.app.numEvents = 50;
    StreamingWorkload workload(
        std::make_unique<ServerTraceSource>(p));
    ArrivalConfig acfg;
    acfg.meanGapCycles = 50'000.0;
    ServePacer pacer(makeArrivalProcess(acfg), 1024, acfg.seed);
    RunInstrumentation inst;
    inst.pacer = &pacer;
    const SimResult r =
        Simulator(SimConfig::baseline()).run(workload, inst);
    const Cycle idle = r.core.bucketCycles[static_cast<std::size_t>(
        CycleBucket::Idle)];
    EXPECT_GT(idle, 0u);
    EXPECT_LT(idle, r.cycles);
    EXPECT_EQ(pacer.events(), p.app.numEvents);
}

TEST(ServeDeathTest, EmptyConfigListPanics)
{
    EXPECT_DEATH(
        (void)runServe(ServerProfile::testProfile(), {}, {}),
        "no configs");
}
