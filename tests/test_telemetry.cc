/**
 * @file
 * Tests of the live telemetry plane: exact final-snapshot closure
 * against the end-of-run registry, monotone/contiguous JSONL streams,
 * byte-identical artifacts with telemetry on vs off, the stall
 * watchdog's fire-exactly-once contract under an injected stall, and
 * the /metrics HTTP surface (routing unit tests plus a real loopback
 * socket round trip).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "report/json_reader.hh"
#include "report/metrics_http.hh"
#include "report/telemetry.hh"
#include "report/watchdog.hh"
#include "server/profile.hh"
#include "server/serve.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Tiny app so telemetry tests run in milliseconds. */
AppProfile
tinyProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-tiny";
    p.numEvents = 8;
    p.avgEventLen = 3000;
    return p;
}

SimResult
runWithTelemetry(const Workload &workload, TelemetryConfig cfg,
                 std::string *captured,
                 TelemetryPlane *plane = nullptr)
{
    RunInstrumentation inst;
    inst.telemetry = cfg;
    TelemetryStream stream;
    if (captured != nullptr) {
        stream.captureTo(captured);
        inst.telemetryStream = &stream;
    }
    inst.telemetryPlane = plane;
    return Simulator(SimConfig::espFull(true)).run(workload, inst);
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/** Scoped environment variable (restores by unsetting on exit). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~EnvGuard() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** Minimal HTTP/1.0 GET against 127.0.0.1:@p port. */
std::string
httpGet(std::uint16_t port, const std::string &target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string request =
        "GET " + target + " HTTP/1.0\r\n\r\n";
    (void)::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

} // namespace

// --------------------------------------------------------------------
// Stream closure and monotonicity
// --------------------------------------------------------------------

TEST(Telemetry, FinalSnapshotEqualsRegistryExactly)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    TelemetryConfig cfg;
    cfg.periodCycles = 5'000;
    std::string captured;
    const SimResult result =
        runWithTelemetry(*workload, cfg, &captured);

    const std::vector<std::string> lines = splitLines(captured);
    ASSERT_GE(lines.size(), 2u); // header + at least the final line

    const auto header = parseJson(lines.front());
    ASSERT_TRUE(header);
    EXPECT_EQ(header->at("schema").string, "espsim-telemetry-stream");
    const JsonValue &names = header->at("names");
    ASSERT_TRUE(names.isArray());
    ASSERT_FALSE(names.array.empty());

    const auto last = parseJson(lines.back());
    ASSERT_TRUE(last);
    const JsonValue *final_flag = last->find("final");
    ASSERT_TRUE(final_flag != nullptr);
    EXPECT_TRUE(final_flag->boolean);
    const JsonValue &values = last->at("values");
    ASSERT_EQ(values.array.size(), names.array.size());

    // Exact, not approximate: the closing snapshot reads the same
    // uint64-backed getters the registry snapshot does.
    for (std::size_t i = 0; i < names.array.size(); ++i) {
        const std::string &name = names.array[i].string;
        ASSERT_TRUE(result.stats.has(name)) << name;
        EXPECT_EQ(values.array[i].number, result.stats.get(name))
            << name;
    }
    EXPECT_EQ(last->at("events").number,
              static_cast<double>(workload->numEvents()));
}

TEST(Telemetry, StreamIsMonotoneWithContiguousSeq)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    TelemetryConfig cfg;
    cfg.periodCycles = 2'000;
    std::string captured;
    (void)runWithTelemetry(*workload, cfg, &captured);

    const std::vector<std::string> lines = splitLines(captured);
    ASSERT_GE(lines.size(), 3u); // header + >=1 periodic + final
    std::uint64_t prev_seq = 0;
    double prev_cycle = -1.0;
    double prev_events = -1.0;
    std::vector<double> prev_values;
    std::size_t finals = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto snap = parseJson(lines[i]);
        ASSERT_TRUE(snap) << lines[i];
        EXPECT_EQ(static_cast<std::uint64_t>(snap->at("seq").number),
                  prev_seq + 1);
        ++prev_seq;
        EXPECT_GE(snap->at("cycle").number, prev_cycle);
        prev_cycle = snap->at("cycle").number;
        EXPECT_GE(snap->at("events").number, prev_events);
        prev_events = snap->at("events").number;
        const JsonValue &values = snap->at("values");
        if (!prev_values.empty()) {
            ASSERT_EQ(values.array.size(), prev_values.size());
            for (std::size_t j = 0; j < prev_values.size(); ++j)
                EXPECT_GE(values.array[j].number, prev_values[j]);
        }
        prev_values.clear();
        for (const JsonValue &v : values.array)
            prev_values.push_back(v.number);
        finals += snap->find("final") != nullptr;
    }
    // Exactly one final line, and it is the last one.
    EXPECT_EQ(finals, 1u);
    EXPECT_TRUE(parseJson(lines.back())->find("final") != nullptr);
}

TEST(Telemetry, HeaderCarriesRunIdentityAndSortedNames)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    TelemetryConfig cfg;
    cfg.periodCycles = 5'000;
    std::string captured;
    (void)runWithTelemetry(*workload, cfg, &captured);

    const auto header = parseJson(splitLines(captured).front());
    ASSERT_TRUE(header);
    EXPECT_EQ(header->at("format_version").number, 1.0);
    EXPECT_FALSE(header->at("config").string.empty());
    EXPECT_EQ(header->at("workload").string, "amazon-tiny");
    EXPECT_EQ(header->at("period_cycles").number, 5'000.0);
    const JsonValue &names = header->at("names");
    for (std::size_t i = 1; i < names.array.size(); ++i)
        EXPECT_LT(names.array[i - 1].string, names.array[i].string);
}

TEST(Telemetry, FinalizeAloneStillClosesTheBlock)
{
    // No pacing at all, stream attached: the block must still be
    // header + exactly one final snapshot.
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    std::string captured;
    (void)runWithTelemetry(*workload, {}, &captured);
    const std::vector<std::string> lines = splitLines(captured);
    ASSERT_EQ(lines.size(), 2u);
    const auto last = parseJson(lines.back());
    ASSERT_TRUE(last);
    EXPECT_TRUE(last->find("final") != nullptr);
    EXPECT_EQ(last->at("seq").number, 1.0);
}

TEST(Telemetry, PlanePublishesFinalSnapshotAndProgress)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    TelemetryPlane plane;
    EXPECT_FALSE(plane.latest().valid);
    TelemetryConfig cfg;
    cfg.periodCycles = 5'000;
    (void)runWithTelemetry(*workload, cfg, nullptr, &plane);

    const TelemetryPlane::View view = plane.latest();
    ASSERT_TRUE(view.valid);
    EXPECT_TRUE(view.snap.isFinal);
    EXPECT_EQ(view.workload, "amazon-tiny");
    ASSERT_TRUE(view.names);
    EXPECT_EQ(view.names->size(), view.snap.values.size());
    // Every retired event noted progress for the watchdog.
    EXPECT_GE(plane.progress(), workload->numEvents());
    EXPECT_FALSE(plane.degraded());
}

// --------------------------------------------------------------------
// Artifact byte-identity
// --------------------------------------------------------------------

TEST(Telemetry, LatencyArtifactBytesIdenticalOnAndOff)
{
    ServeOptions off;
    off.events = 200;
    off.arrival.meanGapCycles = 2000.0;
    ServeOptions on = off;
    on.telemetry.period.periodCycles = 3'000;

    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "test";
    manifest.buildType = "test";
    const std::vector<SimConfig> configs = {SimConfig::baseline(),
                                            SimConfig::espFull(true)};
    const std::string with_telemetry = renderLatencyArtifactJson(
        manifest,
        runServe(ServerProfile::testProfile(), configs, on));
    const std::string without_telemetry = renderLatencyArtifactJson(
        manifest,
        runServe(ServerProfile::testProfile(), configs, off));
    EXPECT_EQ(with_telemetry, without_telemetry);
    // A healthy run never carries the opt-in health block.
    EXPECT_EQ(with_telemetry.find("\"health\""), std::string::npos);
}

// --------------------------------------------------------------------
// Stall watchdog
// --------------------------------------------------------------------

TEST(Watchdog, FiresExactlyOnceWithoutProgress)
{
    TelemetryPlane plane;
    int dumps = 0;
    StallReport seen{};
    {
        StallWatchdog watchdog(plane, 40.0,
                               [&](const StallReport &report) {
                                   ++dumps;
                                   seen = report;
                               });
        // No progress at all: one fire, then the watchdog stays
        // quiet no matter how long the stall continues.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        EXPECT_EQ(watchdog.fireCount(), 1u);
        watchdog.stop();
    }
    EXPECT_EQ(dumps, 1);
    EXPECT_GE(seen.stalledMs, 40.0);
    EXPECT_TRUE(plane.degraded());
    EXPECT_NE(plane.degradedReason().find("stall watchdog"),
              std::string::npos);
}

TEST(Watchdog, StaysQuietWhileProgressFlows)
{
    TelemetryPlane plane;
    StallWatchdog watchdog(plane, 150.0,
                           [](const StallReport &) {});
    for (int i = 0; i < 10; ++i) {
        plane.noteProgress();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    watchdog.stop();
    EXPECT_EQ(watchdog.fireCount(), 0u);
    EXPECT_FALSE(plane.degraded());
}

TEST(Watchdog, InjectedStallDegradesServeEndToEnd)
{
    // The ESPSIM_STALL_INJECT hook wedges the retire path at event 50
    // for 400 ms against a 100 ms budget: the watchdog must fire
    // exactly once and the sweep must come back degraded.
    EnvGuard env("ESPSIM_STALL_INJECT", "50:400");
    ServeOptions opts;
    opts.events = 120;
    opts.arrival.meanGapCycles = 2000.0;
    opts.telemetry.period.periodCycles = 5'000;
    opts.telemetry.watchdogBudgetMs = 100.0;
    const ServeReport report = runServe(
        ServerProfile::testProfile(), {SimConfig::baseline()}, opts);

    EXPECT_EQ(report.watchdogFires, 1u);
    EXPECT_TRUE(report.degraded);
    EXPECT_NE(report.degradedReason.find("stall watchdog"),
              std::string::npos);
    EXPECT_GT(report.telemetrySnapshots, 0u);

    // The degraded state surfaces in the artifact's opt-in health
    // block (and only then — see LatencyArtifactBytesIdenticalOnAndOff
    // for the healthy case).
    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "test";
    manifest.buildType = "test";
    const std::string json =
        renderLatencyArtifactJson(manifest, report);
    EXPECT_NE(json.find("\"health\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
    EXPECT_NE(json.find("\"watchdog_fires\":1"), std::string::npos);
}

// --------------------------------------------------------------------
// Metrics HTTP surface
// --------------------------------------------------------------------

TEST(MetricsHttp, RoutesAndHealthTransitions)
{
    TelemetryPlane plane;
    // Before any publish: healthy, but no snapshot to serve.
    EXPECT_NE(metricsHttpResponse(plane, "/healthz").find("200"),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/healthz")
                  .find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/snapshot.json").find("503"),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/metrics")
                  .find("espsim_health_degraded 0"),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/nope").find("404"),
              std::string::npos);

    TelemetryRunInfo info;
    info.config = "Base";
    info.workload = "testsrv";
    info.configHash = "00112233aabbccdd";
    auto names = std::make_shared<std::vector<std::string>>(
        std::vector<std::string>{"core.cycles", "core.events"});
    TelemetrySnapshot snap;
    snap.seq = 3;
    snap.cycle = 1234;
    snap.events = 7;
    snap.values = {1234.0, 7.0};
    plane.publish(info, names, snap);

    const std::string body =
        metricsHttpResponse(plane, "/snapshot.json");
    EXPECT_NE(body.find("200"), std::string::npos);
    EXPECT_NE(body.find("00112233aabbccdd"), std::string::npos);
    EXPECT_NE(body.find("\"seq\":3"), std::string::npos);

    plane.markDegraded("stall watchdog: test");
    EXPECT_NE(metricsHttpResponse(plane, "/healthz").find("503"),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/healthz").find("degraded"),
              std::string::npos);
    EXPECT_NE(metricsHttpResponse(plane, "/metrics")
                  .find("espsim_health_degraded 1"),
              std::string::npos);
}

TEST(MetricsHttp, ServesOverLoopbackSocket)
{
    TelemetryPlane plane;
    MetricsHttpServer server(plane);
    ASSERT_TRUE(server.start(0)); // ephemeral port
    ASSERT_GT(server.port(), 0);

    const std::string health = httpGet(server.port(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
    const std::string metrics = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("espsim_health_degraded 0"),
              std::string::npos);
    EXPECT_GE(server.requestsServed(), 2u);
    server.stop();
    EXPECT_FALSE(server.running());
}

// --------------------------------------------------------------------
// Prometheus exposition
// --------------------------------------------------------------------

TEST(Prometheus, RendersLabelledCountersWithIntegralValues)
{
    TelemetryPlane plane;
    TelemetryRunInfo info;
    info.config = "Base";
    info.workload = "amazon";
    auto names = std::make_shared<std::vector<std::string>>(
        std::vector<std::string>{"core.cycles", "mem.l1d_misses"});
    TelemetrySnapshot snap;
    snap.seq = 2;
    snap.cycle = 9001;
    snap.events = 41;
    snap.values = {9001.0, 17.0};
    plane.publish(info, names, snap);

    const std::string text =
        renderPrometheusText(plane.latest(), plane.degraded());
    EXPECT_NE(text.find("# TYPE espsim_core_cycles counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("espsim_core_cycles{config=\"Base\","
                        "workload=\"amazon\"} 9001\n"),
              std::string::npos);
    EXPECT_NE(text.find("espsim_mem_l1d_misses{config=\"Base\","
                        "workload=\"amazon\"} 17\n"),
              std::string::npos);
    EXPECT_NE(text.find("espsim_snapshot_seq{config=\"Base\","
                        "workload=\"amazon\"} 2\n"),
              std::string::npos);

    // Before any publish only the health gauge exists.
    TelemetryPlane empty;
    const std::string bare =
        renderPrometheusText(empty.latest(), empty.degraded());
    EXPECT_EQ(bare, "# TYPE espsim_health_degraded gauge\n"
                    "espsim_health_degraded 0\n");
}
