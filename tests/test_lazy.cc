/**
 * @file
 * Tests for the lazy, memory-bounded workload: equivalence with the
 * eager generator, cache-window behaviour, reference stability over
 * the simulator's access pattern, and end-to-end bit-identical
 * simulation.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workload/lazy.hh"

using namespace espsim;

namespace
{

AppProfile
smallProfile()
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 20;
    return p;
}

} // namespace

TEST(Lazy, MatchesEagerGeneration)
{
    const AppProfile p = smallProfile();
    LazyWorkload lazy(p);
    const auto eager = SyntheticGenerator(p).generate();
    ASSERT_EQ(lazy.numEvents(), eager->numEvents());
    for (std::size_t i = 0; i < lazy.numEvents(); ++i) {
        const EventTrace &a = lazy.event(i);
        const EventTrace &b = eager->event(i);
        ASSERT_EQ(a.size(), b.size()) << i;
        ASSERT_EQ(a.handlerPc, b.handlerPc);
        for (std::size_t k = 0; k < a.size(); ++k)
            ASSERT_EQ(a.ops[k].pc, b.ops[k].pc);
    }
    EXPECT_EQ(lazy.warmSet().size(), eager->warmSet().size());
}

TEST(Lazy, CacheStaysBounded)
{
    LazyWorkload lazy(smallProfile(), 4);
    for (std::size_t i = 0; i < lazy.numEvents(); ++i) {
        (void)lazy.event(i);
        if (i + 2 < lazy.numEvents()) {
            (void)lazy.event(i + 1); // the ESP lookahead pattern
            (void)lazy.event(i + 2);
        }
        EXPECT_LE(lazy.residentTraces(), 5u);
    }
}

TEST(Lazy, SequentialPassGeneratesEachEventOnce)
{
    LazyWorkload lazy(smallProfile(), 8);
    for (std::size_t i = 0; i < lazy.numEvents(); ++i)
        (void)lazy.event(i);
    EXPECT_EQ(lazy.generations(), lazy.numEvents());
}

TEST(Lazy, LookaheadReferencesStayValid)
{
    LazyWorkload lazy(smallProfile(), 6);
    const EventTrace &current = lazy.event(5);
    const Addr pc = current.ops[0].pc;
    (void)lazy.event(6);
    (void)lazy.event(7);
    (void)lazy.event(8); // the contract's idx + 3
    EXPECT_EQ(current.ops[0].pc, pc);
}

TEST(Lazy, RandomRevisitRegeneratesIdentically)
{
    LazyWorkload lazy(smallProfile(), 4);
    const std::size_t probe = 2;
    const std::size_t len_first = lazy.event(probe).size();
    // March far enough ahead that the probe event is evicted...
    for (std::size_t i = 0; i < lazy.numEvents(); ++i)
        (void)lazy.event(i);
    EXPECT_GT(lazy.generations(), lazy.numEvents() - 1);
    // ...then revisit: deterministic regeneration.
    EXPECT_EQ(lazy.event(probe).size(), len_first);
}

TEST(Lazy, SimulatesIdenticallyToEager)
{
    const AppProfile p = smallProfile();
    LazyWorkload lazy(p);
    const auto eager = SyntheticGenerator(p).generate();
    const SimResult a = Simulator(SimConfig::espFull(true)).run(lazy);
    const SimResult b = Simulator(SimConfig::espFull(true)).run(*eager);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_DOUBLE_EQ(a.l1iMpki, b.l1iMpki);
}

TEST(LazyDeathTest, OutOfRangePanics)
{
    LazyWorkload lazy(smallProfile());
    EXPECT_DEATH((void)lazy.event(999), "out of range");
}
