/**
 * @file
 * Unit tests for the memory hierarchy: access levels and latencies,
 * inclusive fills, prefetch issue/lateness, probes, warm-up, perfect
 * modes, and speculative stat gating.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "prefetch/inflight.hh"

using namespace espsim;

namespace
{

HierarchyConfig
smallConfig()
{
    HierarchyConfig c;
    c.l1i = {"L1-I", 1024, 2, 2};
    c.l1d = {"L1-D", 1024, 2, 2};
    c.l2 = {"L2", 16 * 1024, 4, 21};
    c.memLatency = 101;
    return c;
}

} // namespace

TEST(Hierarchy, ColdAccessGoesToMemory)
{
    MemoryHierarchy mem(smallConfig());
    const AccessResult r = mem.accessInstr(0x1000, 0);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_TRUE(r.llcMiss());
    EXPECT_EQ(r.latency, 2u + 21u + 101u);
    EXPECT_EQ(mem.l1iMisses(), 1u);
    EXPECT_EQ(mem.l2Misses(), 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    MemoryHierarchy mem(smallConfig());
    mem.accessInstr(0x1000, 0);
    const AccessResult r = mem.accessInstr(0x1004, 1);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, 2u);
    EXPECT_EQ(mem.l1iAccesses(), 2u);
    EXPECT_EQ(mem.l1iMisses(), 1u);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    MemoryHierarchy mem(smallConfig());
    // L1-D is 16 blocks (2-way x 8 sets). Stream 64 distinct blocks
    // through; early ones get evicted from L1 but remain in L2.
    for (Addr a = 0; a < 64 * blockBytes; a += blockBytes)
        mem.accessData(a, false, 0);
    const AccessResult r = mem.accessData(0, false, 0);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, 2u + 21u);
}

TEST(Hierarchy, StoresMarkDirtyAndCount)
{
    MemoryHierarchy mem(smallConfig());
    mem.accessData(0x2000, true, 0);
    const AccessResult r = mem.accessData(0x2000, false, 1);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(mem.l1dAccesses(), 2u);
}

TEST(Hierarchy, ProbeDoesNotFill)
{
    MemoryHierarchy mem(smallConfig());
    const AccessResult p = mem.probeInstr(0x5000);
    EXPECT_EQ(p.level, HitLevel::Memory);
    // Still a miss afterwards: probe must not have inserted anything.
    EXPECT_EQ(mem.probeInstr(0x5000).level, HitLevel::Memory);
    EXPECT_EQ(mem.l1iAccesses(), 0u);
}

TEST(Hierarchy, PrefetchMakesLaterAccessHit)
{
    MemoryHierarchy mem(smallConfig());
    EXPECT_TRUE(mem.prefetchInstr(0x3000, 0));
    // Long after the fill latency: clean hit.
    const AccessResult r = mem.accessInstr(0x3000, 10'000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, 2u);
    EXPECT_EQ(mem.latePrefetchHits(), 0u);
    EXPECT_EQ(mem.prefetchesIssued(), 1u);
}

TEST(Hierarchy, LatePrefetchPaysResidualLatency)
{
    MemoryHierarchy mem(smallConfig());
    mem.prefetchData(0x3000, 1000); // ready at 1000 + 124
    const AccessResult r = mem.accessData(0x3000, false, 1010);
    EXPECT_GT(r.latency, 2u);
    EXPECT_LT(r.latency, 124u + 2u);
    EXPECT_EQ(mem.latePrefetchHits(), 1u);
}

TEST(Hierarchy, PrefetchOfResidentBlockIsNoOp)
{
    MemoryHierarchy mem(smallConfig());
    mem.accessInstr(0x1000, 0);
    EXPECT_FALSE(mem.prefetchInstr(0x1000, 1));
    EXPECT_EQ(mem.prefetchesIssued(), 0u);
}

TEST(Hierarchy, PerfectL1INeverMisses)
{
    HierarchyConfig c = smallConfig();
    c.perfectL1I = true;
    MemoryHierarchy mem(c);
    for (Addr a = 0; a < 100 * blockBytes; a += blockBytes) {
        const AccessResult r = mem.accessInstr(a, 0);
        ASSERT_EQ(r.level, HitLevel::L1);
        ASSERT_EQ(r.latency, 2u);
    }
    EXPECT_EQ(mem.l1iMisses(), 0u);
}

TEST(Hierarchy, PerfectL1DNeverMisses)
{
    HierarchyConfig c = smallConfig();
    c.perfectL1D = true;
    MemoryHierarchy mem(c);
    for (Addr a = 0; a < 100 * blockBytes; a += blockBytes)
        ASSERT_EQ(mem.accessData(a, false, 0).level, HitLevel::L1);
    EXPECT_EQ(mem.l1dMisses(), 0u);
}

TEST(Hierarchy, StatGatingSuppressesCounters)
{
    MemoryHierarchy mem(smallConfig());
    mem.setStatCounting(false);
    mem.accessInstr(0x1000, 0);
    mem.accessData(0x2000, false, 0);
    EXPECT_EQ(mem.l1iAccesses(), 0u);
    EXPECT_EQ(mem.l1dAccesses(), 0u);
    EXPECT_EQ(mem.l2Misses(), 0u);
    mem.setStatCounting(true);
    // But the fills really happened (state changed).
    EXPECT_EQ(mem.accessInstr(0x1000, 1).level, HitLevel::L1);
}

TEST(Hierarchy, ReportExportsCounters)
{
    MemoryHierarchy mem(smallConfig());
    mem.accessInstr(0x1000, 0);
    StatGroup g;
    mem.report(g, "mem.");
    EXPECT_DOUBLE_EQ(g.get("mem.l1i.accesses"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("mem.l1i.misses"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("mem.l2.misses"), 1.0);
}

// --- InflightPrefetchBuffer ----------------------------------------

TEST(Inflight, IssueAndConsume)
{
    InflightPrefetchBuffer buf(4);
    EXPECT_TRUE(buf.issue(0x1000, 50));
    EXPECT_FALSE(buf.issue(0x1000, 60)); // duplicate
    EXPECT_TRUE(buf.contains(0x1000));
    const auto ready = buf.consume(0x1000);
    ASSERT_TRUE(ready.has_value());
    EXPECT_EQ(*ready, 50u);
    EXPECT_FALSE(buf.contains(0x1000));
    EXPECT_FALSE(buf.consume(0x1000).has_value());
}

TEST(Inflight, CapacityEvictsOldest)
{
    InflightPrefetchBuffer buf(2);
    buf.issue(0x1000, 1);
    buf.issue(0x2000, 2);
    buf.issue(0x3000, 3); // evicts 0x1000
    EXPECT_FALSE(buf.contains(0x1000));
    EXPECT_TRUE(buf.contains(0x2000));
    EXPECT_TRUE(buf.contains(0x3000));
    EXPECT_LE(buf.size(), 2u);
}

TEST(Inflight, ClearEmpties)
{
    InflightPrefetchBuffer buf(4);
    buf.issue(0x1000, 1);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_FALSE(buf.contains(0x1000));
}

TEST(Inflight, StaleFifoEntriesSkippedOnEvict)
{
    InflightPrefetchBuffer buf(2);
    buf.issue(0x1000, 1);
    buf.consume(0x1000); // stale fifo entry remains
    buf.issue(0x2000, 2);
    buf.issue(0x3000, 3);
    // Both live entries must still be present (capacity 2).
    EXPECT_TRUE(buf.contains(0x2000));
    EXPECT_TRUE(buf.contains(0x3000));
}
