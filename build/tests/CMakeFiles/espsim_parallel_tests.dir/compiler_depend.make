# Empty compiler generated dependencies file for espsim_parallel_tests.
# This may be replaced when dependencies are built.
