file(REMOVE_RECURSE
  "CMakeFiles/espsim_parallel_tests.dir/test_parallel_sweep.cc.o"
  "CMakeFiles/espsim_parallel_tests.dir/test_parallel_sweep.cc.o.d"
  "espsim_parallel_tests"
  "espsim_parallel_tests.pdb"
  "espsim_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espsim_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
