# Empty dependencies file for espsim_tests.
# This may be replaced when dependencies are built.
