
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/espsim_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/espsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/espsim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/espsim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/espsim_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_esp.cc" "tests/CMakeFiles/espsim_tests.dir/test_esp.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_esp.cc.o.d"
  "/root/repo/tests/test_esp_details.cc" "tests/CMakeFiles/espsim_tests.dir/test_esp_details.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_esp_details.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/espsim_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/espsim_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_lazy.cc" "tests/CMakeFiles/espsim_tests.dir/test_lazy.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_lazy.cc.o.d"
  "/root/repo/tests/test_lists.cc" "tests/CMakeFiles/espsim_tests.dir/test_lists.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_lists.cc.o.d"
  "/root/repo/tests/test_multi_queue.cc" "tests/CMakeFiles/espsim_tests.dir/test_multi_queue.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_multi_queue.cc.o.d"
  "/root/repo/tests/test_prefetch.cc" "tests/CMakeFiles/espsim_tests.dir/test_prefetch.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_prefetch.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/espsim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_runahead.cc" "tests/CMakeFiles/espsim_tests.dir/test_runahead.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_runahead.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/espsim_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/espsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/espsim_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/espsim_tests.dir/test_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/espsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
