file(REMOVE_RECURSE
  "CMakeFiles/espsim_cli.dir/espsim_cli.cc.o"
  "CMakeFiles/espsim_cli.dir/espsim_cli.cc.o.d"
  "espsim"
  "espsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
