# Empty compiler generated dependencies file for espsim_cli.
# This may be replaced when dependencies are built.
