file(REMOVE_RECURSE
  "libespsim.a"
)
