
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/loop_predictor.cc" "src/CMakeFiles/espsim.dir/branch/loop_predictor.cc.o" "gcc" "src/CMakeFiles/espsim.dir/branch/loop_predictor.cc.o.d"
  "/root/repo/src/branch/pentium_m.cc" "src/CMakeFiles/espsim.dir/branch/pentium_m.cc.o" "gcc" "src/CMakeFiles/espsim.dir/branch/pentium_m.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/espsim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/espsim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/cachelet.cc" "src/CMakeFiles/espsim.dir/cache/cachelet.cc.o" "gcc" "src/CMakeFiles/espsim.dir/cache/cachelet.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/espsim.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/espsim.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/espsim.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/espsim.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/job_pool.cc" "src/CMakeFiles/espsim.dir/common/job_pool.cc.o" "gcc" "src/CMakeFiles/espsim.dir/common/job_pool.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/espsim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/espsim.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/espsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/espsim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/espsim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/espsim.dir/common/table.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/CMakeFiles/espsim.dir/cpu/ooo_core.cc.o" "gcc" "src/CMakeFiles/espsim.dir/cpu/ooo_core.cc.o.d"
  "/root/repo/src/cpu/runahead.cc" "src/CMakeFiles/espsim.dir/cpu/runahead.cc.o" "gcc" "src/CMakeFiles/espsim.dir/cpu/runahead.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/espsim.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/espsim.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/esp/config.cc" "src/CMakeFiles/espsim.dir/esp/config.cc.o" "gcc" "src/CMakeFiles/espsim.dir/esp/config.cc.o.d"
  "/root/repo/src/esp/controller.cc" "src/CMakeFiles/espsim.dir/esp/controller.cc.o" "gcc" "src/CMakeFiles/espsim.dir/esp/controller.cc.o.d"
  "/root/repo/src/esp/event_queue.cc" "src/CMakeFiles/espsim.dir/esp/event_queue.cc.o" "gcc" "src/CMakeFiles/espsim.dir/esp/event_queue.cc.o.d"
  "/root/repo/src/esp/lists.cc" "src/CMakeFiles/espsim.dir/esp/lists.cc.o" "gcc" "src/CMakeFiles/espsim.dir/esp/lists.cc.o.d"
  "/root/repo/src/prefetch/inflight.cc" "src/CMakeFiles/espsim.dir/prefetch/inflight.cc.o" "gcc" "src/CMakeFiles/espsim.dir/prefetch/inflight.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/CMakeFiles/espsim.dir/prefetch/next_line.cc.o" "gcc" "src/CMakeFiles/espsim.dir/prefetch/next_line.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/CMakeFiles/espsim.dir/prefetch/stride.cc.o" "gcc" "src/CMakeFiles/espsim.dir/prefetch/stride.cc.o.d"
  "/root/repo/src/sim/sim_config.cc" "src/CMakeFiles/espsim.dir/sim/sim_config.cc.o" "gcc" "src/CMakeFiles/espsim.dir/sim/sim_config.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/espsim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/espsim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats_report.cc" "src/CMakeFiles/espsim.dir/sim/stats_report.cc.o" "gcc" "src/CMakeFiles/espsim.dir/sim/stats_report.cc.o.d"
  "/root/repo/src/trace/event_trace.cc" "src/CMakeFiles/espsim.dir/trace/event_trace.cc.o" "gcc" "src/CMakeFiles/espsim.dir/trace/event_trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/espsim.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/espsim.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/CMakeFiles/espsim.dir/trace/workload.cc.o" "gcc" "src/CMakeFiles/espsim.dir/trace/workload.cc.o.d"
  "/root/repo/src/workload/app_profile.cc" "src/CMakeFiles/espsim.dir/workload/app_profile.cc.o" "gcc" "src/CMakeFiles/espsim.dir/workload/app_profile.cc.o.d"
  "/root/repo/src/workload/builder.cc" "src/CMakeFiles/espsim.dir/workload/builder.cc.o" "gcc" "src/CMakeFiles/espsim.dir/workload/builder.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/espsim.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/espsim.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/lazy.cc" "src/CMakeFiles/espsim.dir/workload/lazy.cc.o" "gcc" "src/CMakeFiles/espsim.dir/workload/lazy.cc.o.d"
  "/root/repo/src/workload/multi_queue.cc" "src/CMakeFiles/espsim.dir/workload/multi_queue.cc.o" "gcc" "src/CMakeFiles/espsim.dir/workload/multi_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
