file(REMOVE_RECURSE
  "CMakeFiles/fig11b_dcache.dir/fig11b_dcache.cc.o"
  "CMakeFiles/fig11b_dcache.dir/fig11b_dcache.cc.o.d"
  "fig11b_dcache"
  "fig11b_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
