# Empty compiler generated dependencies file for fig11b_dcache.
# This may be replaced when dependencies are built.
