# Empty compiler generated dependencies file for fig06_workloads.
# This may be replaced when dependencies are built.
