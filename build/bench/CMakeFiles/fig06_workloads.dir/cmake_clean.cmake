file(REMOVE_RECURSE
  "CMakeFiles/fig06_workloads.dir/fig06_workloads.cc.o"
  "CMakeFiles/fig06_workloads.dir/fig06_workloads.cc.o.d"
  "fig06_workloads"
  "fig06_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
