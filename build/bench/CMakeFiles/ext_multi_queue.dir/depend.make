# Empty dependencies file for ext_multi_queue.
# This may be replaced when dependencies are built.
