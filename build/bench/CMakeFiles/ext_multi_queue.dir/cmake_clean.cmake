file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_queue.dir/ext_multi_queue.cc.o"
  "CMakeFiles/ext_multi_queue.dir/ext_multi_queue.cc.o.d"
  "ext_multi_queue"
  "ext_multi_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
