file(REMOVE_RECURSE
  "CMakeFiles/fig08_hw_budget.dir/fig08_hw_budget.cc.o"
  "CMakeFiles/fig08_hw_budget.dir/fig08_hw_budget.cc.o.d"
  "fig08_hw_budget"
  "fig08_hw_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_hw_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
