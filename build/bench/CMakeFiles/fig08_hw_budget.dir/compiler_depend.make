# Empty compiler generated dependencies file for fig08_hw_budget.
# This may be replaced when dependencies are built.
