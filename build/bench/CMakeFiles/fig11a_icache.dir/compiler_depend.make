# Empty compiler generated dependencies file for fig11a_icache.
# This may be replaced when dependencies are built.
