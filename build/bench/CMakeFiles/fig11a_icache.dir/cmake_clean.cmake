file(REMOVE_RECURSE
  "CMakeFiles/fig11a_icache.dir/fig11a_icache.cc.o"
  "CMakeFiles/fig11a_icache.dir/fig11a_icache.cc.o.d"
  "fig11a_icache"
  "fig11a_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
