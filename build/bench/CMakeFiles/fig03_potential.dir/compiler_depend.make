# Empty compiler generated dependencies file for fig03_potential.
# This may be replaced when dependencies are built.
