file(REMOVE_RECURSE
  "CMakeFiles/fig03_potential.dir/fig03_potential.cc.o"
  "CMakeFiles/fig03_potential.dir/fig03_potential.cc.o.d"
  "fig03_potential"
  "fig03_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
