# Empty compiler generated dependencies file for fig13_cachelet_size.
# This may be replaced when dependencies are built.
