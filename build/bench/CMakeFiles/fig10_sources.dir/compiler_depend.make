# Empty compiler generated dependencies file for fig10_sources.
# This may be replaced when dependencies are built.
