file(REMOVE_RECURSE
  "CMakeFiles/browsing_session.dir/browsing_session.cpp.o"
  "CMakeFiles/browsing_session.dir/browsing_session.cpp.o.d"
  "browsing_session"
  "browsing_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browsing_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
