# Empty dependencies file for browsing_session.
# This may be replaced when dependencies are built.
