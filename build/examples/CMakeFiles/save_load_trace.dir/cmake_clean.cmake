file(REMOVE_RECURSE
  "CMakeFiles/save_load_trace.dir/save_load_trace.cpp.o"
  "CMakeFiles/save_load_trace.dir/save_load_trace.cpp.o.d"
  "save_load_trace"
  "save_load_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_load_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
