# Empty dependencies file for save_load_trace.
# This may be replaced when dependencies are built.
