/**
 * @file
 * Full browsing-session study: run the paper's seven-application suite
 * on the baseline, runahead, and ESP machines, and print a per-app
 * report of where the cycles go — the asynchronous-program pathology
 * of §2 (instruction-cache stalls and branch mispredicts dominating)
 * and how much of it each technique recovers.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/stats_report.hh"

using namespace espsim;

int
main()
{
    const std::vector<SimConfig> configs{
        SimConfig::nextLineStride(),   // the Figure 7 baseline machine
        SimConfig::runaheadExec(true),
        SimConfig::espFull(true),
    };

    const SuiteRunner runner;
    const auto rows = runner.run(configs, /*announce=*/true);

    TextTable breakdown(
        "Cycle breakdown on the baseline machine (CPI per component)");
    breakdown.header({"app", "CPI", "icache", "branch", "data/rob",
                      "L1I-MPKI", "BP-miss%"});
    for (const SuiteRow &row : rows) {
        const SimResult &r = row.results[0];
        const auto inst = static_cast<double>(r.core.instructions);
        breakdown.row({
            row.app,
            TextTable::num(1.0 / r.ipc, 2),
            TextTable::num(r.core.icacheStallCycles / inst, 2),
            TextTable::num(r.core.branchStallCycles / inst, 2),
            TextTable::num((r.core.robStallCycles +
                            r.core.lsqStallCycles) /
                               inst,
                           2),
            TextTable::num(r.l1iMpki, 1),
            TextTable::num(100.0 * r.mispredictRate, 1),
        });
    }
    std::fputs(breakdown.render().c_str(), stdout);
    std::puts("");

    TextTable compare("Runahead and ESP on the same session "
                      "(% improvement over the baseline)");
    compare.header({"app", "Runahead+NL", "ESP+NL", "ESP extra-instr%",
                    "ESP spec-accuracy%"});
    for (const SuiteRow &row : rows) {
        const SimResult &base = row.results[0];
        const SimResult &ra = row.results[1];
        const SimResult &esp = row.results[2];
        compare.row({
            row.app,
            TextTable::num(ra.improvementPctOver(base), 1),
            TextTable::num(esp.improvementPctOver(base), 1),
            TextTable::num(100.0 * esp.extraInstrFraction, 1),
            TextTable::num(
                100.0 * esp.stats.get("esp.spec_match_fraction"), 2),
        });
    }
    std::fputs(compare.render().c_str(), stdout);

    std::printf("\nsuite HMean: Runahead+NL %.1f%%, ESP+NL %.1f%% over "
                "the NL+S baseline\n",
                hmeanImprovementPct(rows, 1, 0),
                hmeanImprovementPct(rows, 2, 0));
    return 0;
}
