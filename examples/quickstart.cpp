/**
 * @file
 * Quickstart: simulate one web application on the baseline (NL + S)
 * and the ESP architecture, and print the headline comparison — the
 * paper's core claim in ~40 lines of API use.
 *
 * Usage: quickstart [app-name]   (default: amazon)
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "sim/sim_config.hh"
#include "workload/app_profile.hh"
#include "workload/generator.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "amazon";

    // 1. Build the workload: the synthetic event-trace stream standing
    //    in for the paper's instrumented-Chromium traces.
    const AppProfile profile = AppProfile::byName(app_name);
    SyntheticGenerator generator(profile);
    const auto workload = generator.generate();
    std::printf("workload %s: %zu events, %llu instructions\n",
                workload->name().c_str(), workload->numEvents(),
                static_cast<unsigned long long>(
                    workload->totalInstructions()));

    // 2. Simulate the baseline: next-line + stride prefetching.
    const SimResult base =
        Simulator(SimConfig::nextLineStride()).run(*workload);

    // 3. Simulate the same machine with ESP (+ next-line).
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(*workload);

    // 4. Compare.
    auto show = [](const char *label, const SimResult &r) {
        std::printf("%-8s cycles %12llu  IPC %5.2f  L1I-MPKI %6.2f  "
                    "L1D-miss %5.2f%%  BP-miss %5.2f%%\n",
                    label, static_cast<unsigned long long>(r.cycles),
                    r.ipc, r.l1iMpki, 100.0 * r.l1dMissRate,
                    100.0 * r.mispredictRate);
    };
    show("NL+S", base);
    show("ESP+NL", esp);
    std::printf("ESP speedup over NL+S: %.1f%%\n",
                esp.improvementPctOver(base));
    std::printf("ESP pre-executed %.0f instructions across %.0f jumps\n",
                esp.stats.get("esp.pre_executed_instrs"),
                esp.stats.get("esp.jumps"));
    return 0;
}
