/**
 * @file
 * Feeding your own asynchronous program into the simulator.
 *
 * The WorkloadBuilder API constructs event traces by hand — this is
 * the integration point for users who have their own instruction
 * traces (e.g., from a binary-instrumentation tool) rather than the
 * bundled synthetic web-app profiles.
 *
 * The example builds a tiny message-router: a stream of "packet"
 * events that each parse a header (branchy code), look up a routing
 * table (data accesses), and append to an output queue (stores), with
 * occasional config-update events that the following packet event
 * *depends on* — demonstrating the divergence annotation.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "workload/builder.hh"

using namespace espsim;

namespace
{

constexpr Addr parseCode = 0x10000;
constexpr Addr routeCode = 0x20000;
constexpr Addr configCode = 0x30000;
constexpr Addr routingTable = 0x5000000;
constexpr Addr outputQueue = 0x6000000;

/** One packet-handling event. */
void
packetEvent(WorkloadBuilder &b, unsigned seq)
{
    b.beginEvent(parseCode, /*arg object*/ 0x9000000 + 4096 * seq);
    // Header parse: short basic blocks with field-dependent branches.
    for (unsigned f = 0; f < 24; ++f) {
        b.aluBlock(parseCode + 96 * f, 5);
        b.load(parseCode + 96 * f + 20, 0x9000000 + 4096 * seq + 8 * f,
               1);
        b.branch(parseCode + 96 * f + 24, (seq >> (f % 5)) & 1,
                 parseCode + 96 * (f + 1));
    }
    // Routing lookup: pointer walk through the table.
    b.call(parseCode + 96 * 24, routeCode);
    for (unsigned h = 0; h < 16; ++h) {
        b.load(routeCode + 32 * h, routingTable + ((seq * 2654435761u +
                                                    h * 97) %
                                                   8192) *
                       64,
               2);
        b.aluBlock(routeCode + 32 * h + 4, 6);
    }
    b.ret(routeCode + 32 * 16, parseCode + 96 * 24 + 4);
    // Emit: sequential stores to the output queue.
    for (unsigned s = 0; s < 8; ++s)
        b.store(parseCode + 96 * 25 + 4 * s,
                outputQueue + 512 * seq + 64 * s);
}

/** A config-update event writing state the next packet reads. */
void
configEvent(WorkloadBuilder &b)
{
    b.beginEvent(configCode);
    for (unsigned i = 0; i < 40; ++i) {
        b.aluBlock(configCode + 64 * i, 6);
        b.store(configCode + 64 * i + 24, routingTable + 64 * i);
    }
}

} // namespace

int
main()
{
    WorkloadBuilder b;
    unsigned seq = 0;
    for (unsigned burst = 0; burst < 12; ++burst) {
        for (unsigned k = 0; k < 8; ++k)
            packetEvent(b, seq++);
        configEvent(b);
        // The packet right after a config update reads the table the
        // update wrote: its speculative pre-execution (which jumps
        // over the config event) diverges halfway through.
        packetEvent(b, seq++);
        OpSequence wrong_path;
        for (unsigned i = 0; i < 120; ++i) {
            MicroOp op;
            op.pc = 0x70000 + 4 * i;
            op.setType(OpType::IntAlu);
            wrong_path.push_back(op);
        }
        b.dependsOnPrevious(b.currentEventSize() / 2,
                            std::move(wrong_path));
    }
    const auto workload = b.build("message-router");

    std::printf("message-router: %zu events, %llu instructions, "
                "%.1f%% independent\n",
                workload->numEvents(),
                static_cast<unsigned long long>(
                    workload->totalInstructions()),
                100.0 * workload->independentEventFraction());

    const SimResult base =
        Simulator(SimConfig::nextLineStride()).run(*workload);
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(*workload);

    std::printf("NL+S   : %8llu cycles, IPC %.2f\n",
                static_cast<unsigned long long>(base.cycles), base.ipc);
    std::printf("ESP+NL : %8llu cycles, IPC %.2f  (%.1f%% faster)\n",
                static_cast<unsigned long long>(esp.cycles), esp.ipc,
                esp.improvementPctOver(base));
    std::printf("ESP speculation accuracy on this workload: %.1f%%\n",
                100.0 * esp.stats.get("esp.spec_match_fraction"));
    return 0;
}
