/**
 * @file
 * Persisting workloads: capture once, replay everywhere.
 *
 * Generates a workload, saves it in the versioned binary trace format,
 * reloads it, and verifies the reloaded trace simulates bit-identically
 * — the workflow for users bringing their own captured traces.
 *
 * Usage: save_load_trace [path]   (default: /tmp/esp_amazon.espw)
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "workload/generator.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/esp_amazon.espw";

    AppProfile profile = AppProfile::byName("amazon");
    profile.numEvents = 20;
    SyntheticGenerator gen(profile);
    const auto original = gen.generate();

    if (!saveWorkload(path, *original)) {
        std::fprintf(stderr, "write failed\n");
        return 1;
    }
    std::printf("saved %zu events (%llu instructions) to %s\n",
                original->numEvents(),
                static_cast<unsigned long long>(
                    original->totalInstructions()),
                path.c_str());

    const auto loaded = loadWorkload(path);
    if (!loaded) {
        std::fprintf(stderr, "reload failed: malformed file\n");
        return 1;
    }

    const SimResult a = Simulator(SimConfig::espFull(true)).run(*original);
    const SimResult b = Simulator(SimConfig::espFull(true)).run(*loaded);
    std::printf("original: %llu cycles; reloaded: %llu cycles — %s\n",
                static_cast<unsigned long long>(a.cycles),
                static_cast<unsigned long long>(b.cycles),
                a.cycles == b.cycles ? "bit-identical" : "MISMATCH");
    return a.cycles == b.cycles ? 0 : 1;
}
