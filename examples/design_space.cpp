/**
 * @file
 * Design-space exploration with the EspConfig knobs: jump-ahead depth,
 * re-entrancy, cachelet size, list capacity, and prefetch lead — the
 * ablatable decisions DESIGN.md calls out. Run on one application for
 * quick turnaround.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

SimResult
runVariant(const InMemoryWorkload &w, const std::string &name,
           void (*tweak)(EspConfig &))
{
    SimConfig cfg = SimConfig::espFull(true);
    cfg.name = name;
    tweak(cfg.esp);
    return Simulator(cfg).run(w);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "amazon";
    SyntheticGenerator gen(AppProfile::byName(app));
    const auto workload = gen.generate();

    const SimResult base =
        Simulator(SimConfig::nextLineStride()).run(*workload);

    struct Variant
    {
        const char *name;
        void (*tweak)(EspConfig &);
    };
    const Variant variants[] = {
        {"ESP (paper design)", [](EspConfig &) {}},
        {"depth 1 (no ESP-2)",
         [](EspConfig &c) { c.maxDepth = 1; }},
        {"depth 4",
         [](EspConfig &c) { c.maxDepth = 4; }},
        {"non-reentrant",
         [](EspConfig &c) { c.reentrant = false; }},
        {"half-size cachelets",
         [](EspConfig &c) {
             c.icachelet.sizeBytes = 3 * 1024;
             c.dcachelet.sizeBytes = 3 * 1024;
         }},
        {"double lists",
         [](EspConfig &c) {
             for (auto *caps : {&c.iListBytes, &c.dListBytes,
                                &c.bListDirBytes, &c.bListTgtBytes}) {
                 (*caps)[0] *= 2;
                 (*caps)[1] *= 2;
             }
         }},
        {"lead 60 instructions",
         [](EspConfig &c) { c.prefetchLeadInstructions = 60; }},
        {"lead 800 instructions",
         [](EspConfig &c) { c.prefetchLeadInstructions = 800; }},
        {"unbounded (ideal)",
         [](EspConfig &c) { c.ideal = true; }},
    };

    TextTable table("ESP design space on '" + app +
                    "' (% improvement over NL+S)");
    table.header({"variant", "improvement %", "L1I MPKI", "extra instr %"});
    for (const Variant &v : variants) {
        const SimResult r = runVariant(*workload, v.name, v.tweak);
        table.row({v.name,
                   TextTable::num(r.improvementPctOver(base), 1),
                   TextTable::num(r.l1iMpki, 2),
                   TextTable::num(100.0 * r.extraInstrFraction, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nExpected shape: the paper design is near the knee — "
              "depth > 2 and bigger structures add little; removing "
              "re-entrancy or shrinking structures costs performance.");
    return 0;
}
